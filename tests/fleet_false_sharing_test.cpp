// False-sharing audit for the fleet engines' per-shard hot state.
//
// Two guarantees, checked two ways:
//
//   * statically: SlabShard — the slab engine's per-shard slot holding
//     the SoA lanes and report accumulators every batched step writes —
//     is cacheline-aligned, so two shards' hot counters never straddle
//     one line (the legacy engine's LegacyShardSlot carries the same
//     static_assert next to its definition in fleet.cpp);
//
//   * dynamically: a max-shard fleet stepped with jittered batches is
//     raced repeatedly and must stay byte-deterministic. The test is in
//     the `fast` label set, so CI's ThreadSanitizer job runs it — any
//     cross-shard write the alignment audit cannot see (a shared vector
//     resized mid-run, a stats cell merged without a barrier) surfaces
//     there as a data race, and here as a fingerprint flip.
#include <gtest/gtest.h>

#include <string>

#include "fleet/fleet.h"
#include "fleet/slab.h"
#include "util/parallel.h"

namespace s2d {
namespace {

static_assert(alignof(SlabShard) >= kCacheLineBytes,
              "SlabShard must start on a cacheline boundary");
static_assert(sizeof(SlabShard) % kCacheLineBytes == 0,
              "adjacent SlabShards in an array must not share a line");
static_assert(kCacheLineBytes >= 64,
              "cacheline constant below any contemporary x86/arm line size");

TEST(FleetFalseSharing, MaxShardStressStaysDeterministic) {
  // More shards than cores oversubscribes the scheduler, maximising
  // preemption points inside batched stepping; jitter desynchronises the
  // shards' walks over their slabs. Every run must still land on the
  // 1-shard fingerprint.
  FleetConfig cfg;
  cfg.sessions = 64;
  cfg.threads = 1;
  cfg.root_seed = 0xfa15e;
  cfg.workload.messages = 3;
  cfg.workload.payload_bytes = 16;
  cfg.batch_steps = 5;
  cfg.batch_jitter = true;
  const SessionFactory factory = make_ghm_fleet_factory();
  const std::string want = run_fleet(cfg, factory).report.fingerprint();

  const unsigned max_shards = 4 * resolve_threads(0);
  cfg.threads = max_shards;
  for (int run = 0; run < 3; ++run) {
    const FleetResult res = run_fleet(cfg, factory);
    EXPECT_EQ(res.shards, max_shards < 64 ? max_shards : 64u);
    EXPECT_EQ(res.report.fingerprint(), want)
        << "run " << run << " at " << max_shards << " shards";
  }
}

TEST(FleetFalseSharing, LegacyEngineUnderSameStress) {
  // The oracle must survive the identical oversubscription (its per-shard
  // partials are the cacheline-padded LegacyShardSlots).
  FleetConfig cfg;
  cfg.sessions = 48;
  cfg.root_seed = 0xfa15e;
  cfg.workload.messages = 3;
  cfg.workload.payload_bytes = 16;
  cfg.engine = FleetEngine::kLegacy;
  cfg.threads = 1;
  const SessionFactory factory = make_ghm_fleet_factory();
  const std::string want = run_fleet(cfg, factory).report.fingerprint();
  cfg.threads = 4 * resolve_threads(0);
  EXPECT_EQ(run_fleet(cfg, factory).report.fingerprint(), want);
}

}  // namespace
}  // namespace s2d
