// Property-style parameterized sweeps: the §2.6 safety conditions must
// hold (at eps = 2^-20, i.e. never in a few hundred runs) across the cross
// product of growth policies, adversary families and seeds; and structural
// invariants of the protocol state must hold at every step.
#include <gtest/gtest.h>

#include <tuple>

#include "adversary/adversaries.h"
#include "core/ghm.h"
#include "harness/runner.h"
#include "link/datalink.h"

namespace s2d {
namespace {

constexpr double kEps = 1.0 / (1 << 20);

enum class AdvKind {
  kFifoLossy,
  kChaos,
  kCrashy,
  kReplay,
  kLengthTarget,
  kStaleFirst,
};

const char* adv_name(AdvKind k) {
  switch (k) {
    case AdvKind::kFifoLossy:
      return "fifo";
    case AdvKind::kChaos:
      return "chaos";
    case AdvKind::kCrashy:
      return "crashy";
    case AdvKind::kReplay:
      return "replay";
    case AdvKind::kLengthTarget:
      return "lengths";
    case AdvKind::kStaleFirst:
      return "stale";
  }
  return "?";
}

std::unique_ptr<Adversary> make_adv(AdvKind kind, std::uint64_t seed) {
  switch (kind) {
    case AdvKind::kFifoLossy:
      return std::make_unique<BenignFifoAdversary>(0.3, Rng(seed));
    case AdvKind::kChaos:
      return std::make_unique<RandomFaultAdversary>(FaultProfile::chaos(0.15),
                                                    Rng(seed));
    case AdvKind::kCrashy: {
      FaultProfile p = FaultProfile::chaos(0.05);
      p.crash_t = 0.003;
      p.crash_r = 0.003;
      return std::make_unique<RandomFaultAdversary>(p, Rng(seed));
    }
    case AdvKind::kReplay:
      return std::make_unique<ReplayAttacker>(100, Rng(seed));
    case AdvKind::kLengthTarget:
      return std::make_unique<LengthTargetingAdversary>(24, 0.6, Rng(seed));
    case AdvKind::kStaleFirst:
      return std::make_unique<StaleFirstAdversary>(0.1, Rng(seed));
  }
  return nullptr;
}

using SafetyParam = std::tuple<const char*, int, std::uint64_t>;

class SafetySweep : public ::testing::TestWithParam<SafetyParam> {};

TEST_P(SafetySweep, NoViolationsEver) {
  const auto& [policy_name, adv_kind, seed] = GetParam();
  DataLinkConfig cfg;
  cfg.retry_every = 3;
  auto pair = make_ghm(GrowthPolicy::by_name(policy_name, kEps), seed * 31);
  DataLink link(std::move(pair.tm), std::move(pair.rm),
                make_adv(static_cast<AdvKind>(adv_kind), seed * 17),
                cfg);
  WorkloadConfig wl;
  wl.messages = 30;
  wl.payload_bytes = 8;
  wl.max_steps_per_message = 3000;
  wl.drain_steps = 3000;  // let attackers play out
  wl.stop_on_stall = false;
  (void)run_workload(link, wl, Rng(seed * 13));
  EXPECT_EQ(link.checker().violations().safety_total(), 0u)
      << "policy=" << policy_name
      << " adv=" << adv_name(static_cast<AdvKind>(adv_kind))
      << " seed=" << seed << " -> "
      << link.checker().violations().summary();
  EXPECT_EQ(link.checker().violations().axiom, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    PolicyAdversarySeed, SafetySweep,
    ::testing::Combine(
        ::testing::Values("geometric", "paper_linear", "quadratic",
                          "aggressive"),
        ::testing::Values(static_cast<int>(AdvKind::kFifoLossy),
                          static_cast<int>(AdvKind::kChaos),
                          static_cast<int>(AdvKind::kCrashy),
                          static_cast<int>(AdvKind::kReplay),
                          static_cast<int>(AdvKind::kLengthTarget),
                          static_cast<int>(AdvKind::kStaleFirst)),
        ::testing::Range<std::uint64_t>(1, 5)),
    [](const auto& param_info) {
      return std::string(std::get<0>(param_info.param)) + "_" +
             adv_name(static_cast<AdvKind>(std::get<1>(param_info.param))) +
             "_s" + std::to_string(std::get<2>(param_info.param));
    });

// ---------------------------------------------------------------------
// Structural invariants sampled during hostile executions.

class InvariantSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InvariantSweep, StateInvariantsHoldEveryStep) {
  const std::uint64_t seed = GetParam();
  const GrowthPolicy policy = GrowthPolicy::geometric(1.0 / 1024);
  auto pair = make_ghm(policy, seed);
  GhmTransmitter* tm = pair.tm.get();
  GhmReceiver* rm = pair.rm.get();
  DataLinkConfig cfg;
  cfg.retry_every = 2;
  FaultProfile p = FaultProfile::chaos(0.2);
  p.crash_t = 0.002;
  p.crash_r = 0.002;
  DataLink link(std::move(pair.tm), std::move(pair.rm),
                std::make_unique<RandomFaultAdversary>(p, Rng(seed)), cfg);

  Rng payload(seed + 1);
  std::uint64_t msg_id = 1;
  for (int round = 0; round < 40; ++round) {
    if (link.tm_ready()) link.offer({msg_id++, make_payload(6, payload)});
    for (int s = 0; s < 50; ++s) {
      link.step();
      // Invariant 1: tau^T always starts with tau'_crash ("1").
      ASSERT_GE(tm->tau().size(), 1u);
      ASSERT_TRUE(tm->tau().bit(0));
      // Invariant 2: epochs are >= 1 and within-epoch counters below bound.
      ASSERT_GE(tm->epoch(), 1u);
      ASSERT_GE(rm->epoch(), 1u);
      ASSERT_LT(tm->wrong_count(), policy.bound(tm->epoch()));
      ASSERT_LT(rm->wrong_count(), policy.bound(rm->epoch()));
      // Invariant 3: string lengths match the policy's epoch schedule.
      std::size_t expect_rho = 0;
      for (std::uint64_t t = 1; t <= rm->epoch(); ++t) {
        expect_rho += policy.size(t);
      }
      ASSERT_EQ(rm->rho().size(), expect_rho);
      std::size_t expect_tau = 1;  // tau'_crash prefix bit
      for (std::uint64_t t = 1; t <= tm->epoch(); ++t) {
        expect_tau += policy.size(t);
      }
      ASSERT_EQ(tm->tau().size(), expect_tau);
    }
  }
  EXPECT_EQ(link.checker().violations().safety_total(), 0u)
      << link.checker().violations().summary();
}

INSTANTIATE_TEST_SUITE_P(Seeds, InvariantSweep,
                         ::testing::Range<std::uint64_t>(1, 9));

// ---------------------------------------------------------------------
// Liveness latency is finite and bounded across fairness windows.

class LivenessSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LivenessSweep, CompletesUnderFairHostility) {
  const std::uint64_t window = GetParam();
  DataLinkConfig cfg;
  cfg.retry_every =
      static_cast<std::uint32_t>(2 * window);  // acks below drain rate
  auto pair = make_ghm(GrowthPolicy::geometric(kEps), window * 7 + 1);
  DataLink link(
      std::move(pair.tm), std::move(pair.rm),
      std::make_unique<FairnessEnvelope>(std::make_unique<SilentAdversary>(),
                                         window),
      cfg);
  const RunReport r = run_workload(
      link, {.messages = 3, .max_steps_per_message = 3000000}, Rng(9));
  EXPECT_EQ(r.completed, 3u) << "window=" << window;
}

INSTANTIATE_TEST_SUITE_P(Windows, LivenessSweep,
                         ::testing::Values(2, 4, 8, 16, 32));

}  // namespace
}  // namespace s2d
