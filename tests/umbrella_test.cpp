// The umbrella header must compile standalone and expose the whole public
// surface; this doubles as a smoke test that the advertised one-include
// quickstart actually works.
#include "s2d.h"

#include <gtest/gtest.h>

namespace s2d {
namespace {

TEST(Umbrella, QuickstartThroughSingleInclude) {
  GhmPair proto = make_ghm(GrowthPolicy::geometric(1.0 / (1 << 16)), 1);
  DataLinkConfig cfg;
  cfg.retry_every = 3;
  DataLink link(std::move(proto.tm), std::move(proto.rm),
                std::make_unique<RandomFaultAdversary>(
                    FaultProfile::chaos(0.1), Rng(2)),
                cfg);
  link.offer({1, "hello"});
  EXPECT_TRUE(link.run_until_ok(100000));
  EXPECT_TRUE(link.checker().clean());
}

TEST(Umbrella, EverySubsystemReachable) {
  // One symbol from each subsystem, proving the includes compose.
  EXPECT_TRUE(GrowthPolicy::geometric(0.01).sound());
  EXPECT_EQ(GhmReceiver::tau_crash().to_binary(), "0");
  EXPECT_EQ(NetworkGraph::line(3).edge_count(), 2u);
  EXPECT_EQ(StopWaitConfig{}.modulus, 2u);
  EXPECT_EQ(SilentAdversary{}.name(), "silent");
  ExplorerConfig explorer_cfg;
  EXPECT_GT(explorer_cfg.max_depth, 0u);
  Trace trace;
  EXPECT_TRUE(render_sequence(trace).find("transmitter") !=
              std::string::npos);
}

}  // namespace
}  // namespace s2d
