#!/usr/bin/env bash
# CLI contract for script input over stdin: malformed bytes piped into
# tools/replay or tools/fuzz must fail with exit 2 and a `<stdin>:line:col`
# diagnostic, and well-formed corpus documents must work from a pipe
# exactly as from a file.
#
#   script_stdin_smoke.sh <replay-binary> <fuzz-binary> <corpus-dir>
set -u

REPLAY=${1:?usage: script_stdin_smoke.sh <replay> <fuzz> <corpus-dir>}
FUZZ=${2:?usage: script_stdin_smoke.sh <replay> <fuzz> <corpus-dir>}
CORPUS=${3:?usage: script_stdin_smoke.sh <replay> <fuzz> <corpus-dir>}

FAIL=0
note() { echo "script_stdin_smoke: $*" >&2; FAIL=1; }

# 1. Malformed stdin -> replay: exit 2 + <stdin>:line:col diagnostic.
ERR=$(printf '@system ghm\ndeliver_tr not_a_number\n' \
      | "$REPLAY" --script - 2>&1 >/dev/null)
STATUS=$?
[ "$STATUS" -eq 2 ] || note "replay malformed stdin: exit $STATUS, want 2"
echo "$ERR" | grep -q '^<stdin>:2:' \
  || note "replay diagnostic lacks <stdin>:2:... (got: $ERR)"

# 2. Malformed stdin -> fuzz --seed-script -: exit 2 + diagnostic.
ERR=$(printf 'bogus decision\n' \
      | "$FUZZ" --seed-script - --fuzz-scripts 1 2>&1 >/dev/null)
STATUS=$?
[ "$STATUS" -eq 2 ] || note "fuzz malformed stdin: exit $STATUS, want 2"
echo "$ERR" | grep -q '^<stdin>:1:' \
  || note "fuzz diagnostic lacks <stdin>:1:... (got: $ERR)"

# 3. A well-formed corpus document replays from a pipe as from a file.
DOC="$CORPUS/ghm_clean_two_messages.script"
if ! "$REPLAY" --script - --render false < "$DOC" > /dev/null; then
  note "replay of $DOC via stdin failed"
fi

# 4. Empty stdin is malformed for fuzz seeding (an empty witness replays
#    nothing), but must not crash; replay treats it as an empty clean run.
printf '' | "$REPLAY" --script - --render false > /dev/null \
  || note "replay of empty stdin should succeed (empty script, clean)"

exit "$FAIL"
