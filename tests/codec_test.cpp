#include "util/codec.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.h"

namespace s2d {
namespace {

TEST(Codec, VarintRoundTripBoundaries) {
  for (std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{127},
        std::uint64_t{128}, std::uint64_t{16383}, std::uint64_t{16384},
        std::uint64_t{1} << 32, UINT64_MAX}) {
    Writer w;
    w.varint(v);
    Reader r(w.bytes());
    EXPECT_EQ(r.varint(), v);
    EXPECT_TRUE(r.ok_and_done());
  }
}

TEST(Codec, VarintCompactness) {
  Writer w;
  w.varint(127);
  EXPECT_EQ(w.size(), 1u);
  Writer w2;
  w2.varint(128);
  EXPECT_EQ(w2.size(), 2u);
}

TEST(Codec, VarintOverflowingTerminalByteRejected) {
  // A 10-byte varint's last byte can only contribute bit 63: any higher
  // value bit would be silently discarded by the shift, making two
  // distinct encodings decode to the same u64. Decoding must be injective
  // on accepted inputs, so such bytes are malformed.
  const Bytes overflow = {std::byte{0xff}, std::byte{0xff}, std::byte{0xff},
                          std::byte{0xff}, std::byte{0xff}, std::byte{0xff},
                          std::byte{0xff}, std::byte{0xff}, std::byte{0xff},
                          std::byte{0x02}};
  Reader r(overflow);
  (void)r.varint();
  EXPECT_FALSE(r.ok());

  // ...while UINT64_MAX itself (terminal byte 0x01) still round-trips.
  Writer w;
  w.varint(UINT64_MAX);
  EXPECT_EQ(w.bytes().back(), std::byte{0x01});
  Reader r2(w.bytes());
  EXPECT_EQ(r2.varint(), UINT64_MAX);
  EXPECT_TRUE(r2.ok_and_done());
}

TEST(Codec, VarintContinuationPastTenBytesRejected) {
  const Bytes unterminated(11, std::byte{0x80});
  Reader r(unterminated);
  (void)r.varint();
  EXPECT_FALSE(r.ok());
}

TEST(Codec, Fixed64RoundTrip) {
  for (std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{0xdeadbeefcafef00d}, UINT64_MAX}) {
    Writer w;
    w.fixed64(v);
    EXPECT_EQ(w.size(), 8u);
    Reader r(w.bytes());
    EXPECT_EQ(r.fixed64(), v);
    EXPECT_TRUE(r.ok_and_done());
  }
}

TEST(Codec, StringRoundTrip) {
  Writer w;
  w.str("hello");
  w.str("");
  w.str(std::string(1000, 'x'));
  Reader r(w.bytes());
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str(), std::string(1000, 'x'));
  EXPECT_TRUE(r.ok_and_done());
}

TEST(Codec, BlobRoundTrip) {
  Bytes data;
  for (int i = 0; i < 100; ++i) data.push_back(static_cast<std::byte>(i));
  Writer w;
  w.blob(data);
  Reader r(w.bytes());
  EXPECT_EQ(r.blob(), data);
  EXPECT_TRUE(r.ok_and_done());
}

TEST(Codec, BitStringRoundTrip) {
  Rng rng(31);
  for (std::size_t n : {0u, 1u, 7u, 64u, 65u, 333u}) {
    const BitString b = BitString::random(n, rng);
    Writer w;
    w.bits(b);
    Reader r(w.bytes());
    EXPECT_EQ(r.bits(), b) << n;
    EXPECT_TRUE(r.ok_and_done());
  }
}

TEST(Codec, MixedSequenceRoundTrip) {
  Rng rng(32);
  const BitString b = BitString::random(100, rng);
  Writer w;
  w.u8(0xab);
  w.varint(99);
  w.str("payload");
  w.bits(b);
  w.fixed64(7);
  Reader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.varint(), 99u);
  EXPECT_EQ(r.str(), "payload");
  EXPECT_EQ(r.bits(), b);
  EXPECT_EQ(r.fixed64(), 7u);
  EXPECT_TRUE(r.ok_and_done());
}

TEST(Codec, ReadPastEndSetsError) {
  Writer w;
  w.u8(1);
  Reader r(w.bytes());
  (void)r.u8();
  (void)r.u8();  // past end
  EXPECT_FALSE(r.ok());
}

TEST(Codec, TruncatedStringFails) {
  Writer w;
  w.str("hello world");
  Bytes bytes = w.take();
  bytes.resize(4);  // cut mid-payload
  Reader r(bytes);
  (void)r.str();
  EXPECT_FALSE(r.ok());
}

TEST(Codec, OversizedLengthPrefixFails) {
  // A length prefix larger than the remaining input must fail cleanly, not
  // allocate or read out of bounds.
  Writer w;
  w.varint(1'000'000'000);
  w.u8('x');
  Reader r(w.bytes());
  (void)r.str();
  EXPECT_FALSE(r.ok());
}

TEST(Codec, UnterminatedVarintFails) {
  Bytes bytes(12, std::byte{0xff});  // continuation bit forever
  Reader r(bytes);
  (void)r.varint();
  EXPECT_FALSE(r.ok());
}

TEST(Codec, BitStringBadPaddingFails) {
  // Craft a bit string whose trailing padding bits are nonzero.
  Writer w;
  w.varint(1);              // one bit...
  w.fixed64(0xffffffffull); // ...but a word with many bits set
  Reader r(w.bytes());
  (void)r.bits();
  EXPECT_FALSE(r.ok());
}

TEST(Codec, OkAndDoneRejectsTrailingGarbage) {
  Writer w;
  w.varint(5);
  w.u8(0);
  Reader r(w.bytes());
  EXPECT_EQ(r.varint(), 5u);
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(r.ok_and_done());  // one unread byte remains
}

TEST(Codec, WriterClearReusesBuffer) {
  Writer w;
  w.str("first payload");
  const Bytes first(w.bytes().begin(), w.bytes().end());
  w.clear();
  EXPECT_EQ(w.size(), 0u);
  w.str("first payload");
  EXPECT_TRUE(std::equal(w.bytes().begin(), w.bytes().end(), first.begin(),
                         first.end()));
  // clear() then a different encode: no residue from the longer content.
  w.clear();
  w.u8(7);
  EXPECT_EQ(w.size(), 1u);
}

TEST(Codec, StrIntoReusesTarget) {
  Writer w;
  w.str("abc");
  std::string out = "previous-much-longer-content";
  Reader r(w.bytes());
  r.str_into(out);
  EXPECT_TRUE(r.ok_and_done());
  EXPECT_EQ(out, "abc");
}

TEST(Codec, BitsIntoReusesTargetAndClearsOnError) {
  Rng rng(31);
  const BitString value = BitString::random(100, rng);
  Writer w;
  w.bits(value);
  BitString out = BitString::random(300, rng);  // stale, larger content
  Reader r(w.bytes());
  r.bits_into(out);
  EXPECT_TRUE(r.ok_and_done());
  EXPECT_EQ(out, value);

  // Malformed input: sticky error flag set, target left empty — never a
  // half-decoded value the caller could mistake for protocol state.
  Writer bad;
  bad.varint(1);               // one bit...
  bad.fixed64(0xffffffffull);  // ...with nonzero padding
  Reader rb(bad.bytes());
  BitString target = value;
  rb.bits_into(target);
  EXPECT_FALSE(rb.ok());
  EXPECT_EQ(target.size(), 0u);

  // Truncated input (declared length exceeds the buffer): same contract.
  Writer trunc;
  trunc.varint(1'000'000);  // a million bits, no words follow
  Reader rt(trunc.bytes());
  BitString target2 = value;
  rt.bits_into(target2);
  EXPECT_FALSE(rt.ok());
  EXPECT_EQ(target2.size(), 0u);
}

TEST(Codec, ErrorIsSticky) {
  Writer w;
  w.u8(1);
  Reader r(w.bytes());
  (void)r.fixed64();  // fails: needs 8 bytes
  EXPECT_FALSE(r.ok());
  (void)r.u8();
  EXPECT_FALSE(r.ok());  // stays failed even though a byte existed
}

}  // namespace
}  // namespace s2d
