// Decoder and module fuzzing: totality under arbitrary input.
//
// Every byte string a channel can possibly deliver must be handled without
// crashes, UB, unbounded allocation or state corruption — the executors
// feed module inputs straight from (adversary-scheduled, possibly mutated)
// channel bytes, so decoder totality is a safety property of the whole
// system. These tests hurl random and structurally mutated bytes at every
// decoder and at the protocol modules themselves.
#include <gtest/gtest.h>

#include "baseline/stopwait.h"
#include "core/ghm.h"
#include "core/padding.h"
#include "transport/relay.h"
#include "util/rng.h"

namespace s2d {
namespace {

Bytes random_bytes(std::size_t n, Rng& rng) {
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::byte>(rng.next_u64() & 0xff);
  return out;
}

TEST(Fuzz, AllDecodersSurviveRandomBytes) {
  Rng rng(1);
  for (int iter = 0; iter < 5000; ++iter) {
    const auto len = static_cast<std::size_t>(rng.next_below(200));
    const Bytes junk = random_bytes(len, rng);
    (void)DataPacket::decode(junk);
    (void)AckPacket::decode(junk);
    (void)SeqDataFrame::decode(junk);
    (void)SeqAckFrame::decode(junk);
    (void)ResyncReqFrame::decode(junk);
    (void)ResyncAckFrame::decode(junk);
    (void)RelayFrame::decode(junk, 0xf1);
    (void)RelayFrame::decode(junk, 0xf2);
    (void)unpad(junk);
  }
}

TEST(Fuzz, RandomBytesNeverDecodeAsValidDataPacket) {
  // Structural redundancy measurement: across 50k random strings sized
  // like real packets, essentially none should parse (this is what makes
  // the §5 forgery model harmless — see E9).
  Rng rng(2);
  int parsed = 0;
  for (int iter = 0; iter < 50000; ++iter) {
    const Bytes junk = random_bytes(48, rng);
    parsed += DataPacket::decode(junk).has_value() ? 1 : 0;
  }
  EXPECT_LE(parsed, 1);
}

TEST(Fuzz, BitflippedRealPacketsNeverCrashDecoders) {
  Rng rng(3);
  const DataPacket real{{7, "some payload"}, BitString::random(26, rng),
                        BitString::random(27, rng)};
  const Bytes wire = real.encode();
  for (int iter = 0; iter < 20000; ++iter) {
    Bytes mutant = wire;
    const int flips = 1 + static_cast<int>(rng.next_below(4));
    for (int f = 0; f < flips; ++f) {
      const auto idx = static_cast<std::size_t>(
          rng.next_below(mutant.size()));
      mutant[idx] ^= static_cast<std::byte>(
          1 << static_cast<int>(rng.next_below(8)));
    }
    const auto decoded = DataPacket::decode(mutant);
    if (decoded) {
      // Whatever decodes must re-encode to a well-formed packet of equal
      // semantic content (round-trip stability even for mutants).
      const auto again = DataPacket::decode(decoded->encode());
      ASSERT_TRUE(again.has_value());
      EXPECT_EQ(again->rho, decoded->rho);
      EXPECT_EQ(again->tau, decoded->tau);
    }
  }
}

TEST(Fuzz, GhmModulesSurviveRandomPacketStorm) {
  Rng rng(4);
  auto pair = make_ghm(GrowthPolicy::geometric(1.0 / 1024), 5);
  TxOutbox txo;
  RxOutbox rxo;
  pair.tm->on_send_msg({1, "x"}, txo);
  for (int iter = 0; iter < 20000; ++iter) {
    const auto len = static_cast<std::size_t>(rng.next_below(120));
    const Bytes junk = random_bytes(len, rng);
    pair.tm->on_receive_pkt(junk, txo);
    pair.rm->on_receive_pkt(junk, rxo);
    // Random junk must not have tricked either station. (clear() resets
    // the ok flag and delivery slots, so assert before recycling.)
    ASSERT_TRUE(rxo.delivered().empty());
    ASSERT_FALSE(txo.ok_signalled());
    txo.clear();
    rxo.clear();
  }
  // Nor advanced the epoch machinery: junk is not a "wrong packet", it is
  // no packet at all.
  EXPECT_EQ(pair.rm->epoch(), 1u);
  EXPECT_EQ(pair.tm->epoch(), 1u);
}

TEST(Fuzz, StopWaitModulesSurviveRandomPacketStorm) {
  Rng rng(6);
  StopWaitTransmitter tx({.modulus = 2, .nonvolatile_seq = true,
                          .resync_on_crash = true});
  StopWaitReceiver rx({.modulus = 2, .nonvolatile_seq = true,
                       .resync_on_crash = true});
  TxOutbox txo;
  RxOutbox rxo;
  tx.on_send_msg({1, "x"}, txo);
  for (int iter = 0; iter < 20000; ++iter) {
    const auto len = static_cast<std::size_t>(rng.next_below(60));
    const Bytes junk = random_bytes(len, rng);
    tx.on_receive_pkt(junk, txo);
    rx.on_receive_pkt(junk, rxo);
    ASSERT_TRUE(rxo.delivered().empty());
    ASSERT_FALSE(txo.ok_signalled());
    txo.clear();
    rxo.clear();
  }
}

TEST(Fuzz, RelayFrameMutantsCaughtByCrc) {
  // Unlike the link packets (whose protection is structural), relay frames
  // carry an explicit CRC32: across 20k 1-3-bit mutants, none may decode.
  Rng rng(7);
  RelayFrame frame;
  frame.frame_id = 9;
  frame.src = 1;
  frame.dst = 2;
  frame.route = {1, 3, 2};
  frame.payload = random_bytes(40, rng);
  const Bytes wire = frame.encode(0xf2);
  int survived = 0;
  for (int iter = 0; iter < 20000; ++iter) {
    Bytes mutant = wire;
    const int flips = 1 + static_cast<int>(rng.next_below(3));
    for (int f = 0; f < flips; ++f) {
      const auto idx = static_cast<std::size_t>(
          rng.next_below(mutant.size()));
      mutant[idx] ^= static_cast<std::byte>(
          1 << static_cast<int>(rng.next_below(8)));
    }
    if (mutant == wire) continue;  // flips cancelled out: not a mutant
    survived += RelayFrame::decode(mutant, 0xf2).has_value() ? 1 : 0;
  }
  EXPECT_EQ(survived, 0);
}

TEST(Fuzz, PadUnpadRandomRoundTripsAlwaysExact) {
  Rng rng(8);
  for (int iter = 0; iter < 5000; ++iter) {
    const auto len = static_cast<std::size_t>(rng.next_below(150));
    const auto bucket = 1 + static_cast<std::size_t>(rng.next_below(128));
    const Bytes pkt = random_bytes(len, rng);
    const auto back = unpad(pad_to_bucket(pkt, bucket));
    ASSERT_TRUE(back.has_value());
    ASSERT_EQ(*back, pkt);
  }
}

}  // namespace
}  // namespace s2d
