#include "util/rng.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace s2d {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next_u64() == b.next_u64() ? 1 : 0;
  EXPECT_LT(equal, 2);
}

TEST(Rng, ForkIsIndependentOfParentContinuation) {
  Rng parent(7);
  Rng child = parent.fork(1);
  // The child stream should not simply replay the parent stream.
  Rng parent2(7);
  (void)parent2.next_u64();  // account for the fork's draw
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += child.next_u64() == parent2.next_u64() ? 1 : 0;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ForkSaltMatters) {
  Rng p1(9);
  Rng p2(9);
  Rng a = p1.fork(1);
  Rng b = p2.fork(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next_u64() == b.next_u64() ? 1 : 0;
  EXPECT_LT(equal, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(11);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 7ull, 100ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowOneAlwaysZero) {
  Rng rng(12);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, NextBelowRoughlyUniform) {
  Rng rng(14);
  std::map<std::uint64_t, int> counts;
  const int kDraws = 60000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(6)];
  for (const auto& [v, c] : counts) {
    EXPECT_GT(c, kDraws / 6 - 800) << v;
    EXPECT_LT(c, kDraws / 6 + 800) << v;
  }
}

TEST(Rng, NextRangeInclusiveBounds) {
  Rng rng(15);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(16);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(18);
  int hits = 0;
  for (int i = 0; i < 50000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / 50000.0, 0.3, 0.02);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  Rng rng(19);
  EXPECT_EQ(Rng::min(), 0u);
  EXPECT_EQ(Rng::max(), UINT64_MAX);
  (void)rng();
}

TEST(SplitMix64, KnownFirstOutputsDiffer) {
  SplitMix64 a(0);
  SplitMix64 b(1);
  EXPECT_NE(a.next(), b.next());
}

}  // namespace
}  // namespace s2d
