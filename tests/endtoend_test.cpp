// Transport-layer integration: GHM end-to-end over the simulated network
// with both relays, under link faults and endpoint crashes.
#include "transport/endtoend.h"

#include <gtest/gtest.h>

#include "harness/runner.h"

namespace s2d {
namespace {

constexpr double kEps = 1.0 / (1 << 20);

std::unique_ptr<Relay> make_relay(const std::string& kind) {
  if (kind == "flooding") return std::make_unique<FloodingRelay>(16);
  return std::make_unique<PathRelay>();
}

/// Runs `messages` through a session; returns completions.
std::uint64_t drive(TransportSession& session, std::uint64_t messages,
                    std::uint64_t max_steps_each = 20000) {
  Rng payload_rng(777);
  std::uint64_t completed = 0;
  for (std::uint64_t n = 1; n <= messages; ++n) {
    if (!session.tm_ready()) break;
    session.offer({n, make_payload(24, payload_rng)});
    if (session.run_until_ok(max_steps_each)) ++completed;
  }
  return completed;
}

class EndToEndRelayTest : public ::testing::TestWithParam<const char*> {};

TEST_P(EndToEndRelayTest, QuietGridDeliversEverything) {
  Network net(NetworkGraph::grid(3, 3), {}, Rng(1));
  TransportSession session(net, make_relay(GetParam()),
                           make_ghm(GrowthPolicy::geometric(kEps), 2),
                           {.src = 0, .dst = 8}, Rng(3));
  EXPECT_EQ(drive(session, 20), 20u);
  EXPECT_TRUE(session.checker().clean())
      << session.checker().violations().summary();
}

TEST_P(EndToEndRelayTest, LossyNetworkStillReliable) {
  NetworkConfig cfg;
  cfg.frame_loss = 0.2;
  Network net(NetworkGraph::grid(3, 3), cfg, Rng(4));
  TransportSession session(net, make_relay(GetParam()),
                           make_ghm(GrowthPolicy::geometric(kEps), 5),
                           {.src = 0, .dst = 8}, Rng(6));
  EXPECT_EQ(drive(session, 15), 15u);
  EXPECT_TRUE(session.checker().clean())
      << session.checker().violations().summary();
}

TEST_P(EndToEndRelayTest, CorruptingNetworkStillReliable) {
  // §2.5: lower layers only approximate causality; the CRC-dropping relay
  // restores the semi-reliable abstraction and GHM rides on top.
  NetworkConfig cfg;
  cfg.frame_corrupt = 0.2;
  Network net(NetworkGraph::grid(3, 3), cfg, Rng(7));
  TransportSession session(net, make_relay(GetParam()),
                           make_ghm(GrowthPolicy::geometric(kEps), 8),
                           {.src = 0, .dst = 8}, Rng(9));
  EXPECT_EQ(drive(session, 15), 15u);
  EXPECT_TRUE(session.checker().clean())
      << session.checker().violations().summary();
}

TEST_P(EndToEndRelayTest, FlappingLinksStillReliable) {
  NetworkConfig cfg;
  cfg.link_fail = 0.02;
  cfg.link_recover = 0.2;
  Network net(NetworkGraph::grid(4, 4), cfg, Rng(10));
  TransportSession session(net, make_relay(GetParam()),
                           make_ghm(GrowthPolicy::geometric(kEps), 11),
                           {.src = 0, .dst = 15}, Rng(12));
  EXPECT_EQ(drive(session, 10, 100000), 10u);
  EXPECT_TRUE(session.checker().clean())
      << session.checker().violations().summary();
}

TEST_P(EndToEndRelayTest, EndpointCrashesPreserveSafety) {
  NetworkConfig net_cfg;
  net_cfg.frame_loss = 0.05;
  Network net(NetworkGraph::grid(3, 3), net_cfg, Rng(13));
  TransportConfig cfg{.src = 0, .dst = 8};
  cfg.crash_t_per_step = 0.001;
  cfg.crash_r_per_step = 0.001;
  TransportSession session(net, make_relay(GetParam()),
                           make_ghm(GrowthPolicy::geometric(kEps), 14), cfg,
                           Rng(15));
  Rng payload_rng(16);
  for (std::uint64_t n = 1; n <= 30; ++n) {
    if (!session.tm_ready()) break;
    session.offer({n, make_payload(16, payload_rng)});
    (void)session.run_until_ok(20000);  // aborts allowed
  }
  EXPECT_TRUE(session.checker().clean())
      << session.checker().violations().summary();
  EXPECT_GT(session.stats().oks, 0u);
}

INSTANTIATE_TEST_SUITE_P(Relays, EndToEndRelayTest,
                         ::testing::Values("flooding", "path"),
                         [](const auto& param_info) { return param_info.param; });

TEST(EndToEnd, PathRelayCheaperPerMessageOnQuietNetwork) {
  // §1's cost claim: with no errors, path routing approaches optimal cost;
  // flooding pays O(|E|) per packet.
  auto run = [](const std::string& kind) {
    Network net(NetworkGraph::grid(4, 4), {}, Rng(20));
    TransportSession session(net, kind == "flooding"
                                      ? std::unique_ptr<Relay>(
                                            std::make_unique<FloodingRelay>(16))
                                      : std::make_unique<PathRelay>(),
                             make_ghm(GrowthPolicy::geometric(kEps), 21),
                             {.src = 0, .dst = 15}, Rng(22));
    drive(session, 10);
    return session.relay().frames_sent();
  };
  EXPECT_LT(run("path"), run("flooding") / 2);
}

TEST(EndToEnd, MessagesArriveInOrderOverReorderingNetwork) {
  // Random per-frame delays reorder packets across the grid's many paths;
  // the delivered message sequence must still be exactly the sent one.
  NetworkConfig cfg;
  cfg.delay_min = 1;
  cfg.delay_max = 10;
  Network net(NetworkGraph::grid(3, 3), cfg, Rng(23));
  TransportSession session(net, std::make_unique<FloodingRelay>(16),
                           make_ghm(GrowthPolicy::geometric(kEps), 24),
                           {.src = 0, .dst = 8}, Rng(25));
  EXPECT_EQ(drive(session, 25), 25u);
  EXPECT_TRUE(session.checker().clean())
      << session.checker().violations().summary();
  EXPECT_EQ(session.checker().deliveries(), 25u);
}

}  // namespace
}  // namespace s2d
