// Differential validation of the TraceChecker: an independent, brutally
// simple offline re-implementation of the §2.6 conditions (quadratic
// scans, no incremental state) is run over the recorded traces of many
// random executions — of correct AND broken protocols — and must agree
// with the online checker event for event. Since every experiment's
// conclusion flows through the checker, this file is the keystone test.
#include <gtest/gtest.h>

#include "adversary/adversaries.h"
#include "baseline/fixed_nonce.h"
#include "baseline/stopwait.h"
#include "core/ghm.h"
#include "harness/runner.h"
#include "link/datalink.h"

namespace s2d {
namespace {

/// Reference (offline) implementation: recompute all violation counts from
/// the full trace with straightforward quadratic logic.
ViolationCounts reference_check(const Trace& trace) {
  const auto& ev = trace.events();
  ViolationCounts out;

  auto is_boundary = [](const TraceEvent& e) {
    return e.kind == ActionKind::kReceiveMsg ||
           e.kind == ActionKind::kCrashR;
  };

  // Indexed scans; i, j, k range over trace positions.
  for (std::size_t i = 0; i < ev.size(); ++i) {
    switch (ev[i].kind) {
      case ActionKind::kSendMsg: {
        // Axiom 2: no earlier send of the same id.
        for (std::size_t j = 0; j < i; ++j) {
          if (ev[j].kind == ActionKind::kSendMsg &&
              ev[j].msg_id == ev[i].msg_id) {
            ++out.axiom;
            break;
          }
        }
        // Axiom 1: between the previous send and this one there is an OK
        // or crash^T.
        for (std::size_t j = i; j-- > 0;) {
          if (ev[j].kind == ActionKind::kOk ||
              ev[j].kind == ActionKind::kCrashT) {
            break;
          }
          if (ev[j].kind == ActionKind::kSendMsg) {
            ++out.axiom;
            break;
          }
        }
        break;
      }

      case ActionKind::kOk: {
        // Find the in-flight message: last send with no OK/crash^T since.
        bool found_send = false;
        std::size_t send_pos = 0;
        std::uint64_t msg = 0;
        for (std::size_t j = i; j-- > 0;) {
          if (ev[j].kind == ActionKind::kOk ||
              ev[j].kind == ActionKind::kCrashT) {
            break;
          }
          if (ev[j].kind == ActionKind::kSendMsg) {
            found_send = true;
            send_pos = j;
            msg = ev[j].msg_id;
            break;
          }
        }
        if (!found_send) {
          ++out.order;
          break;
        }
        // Order: some receive_msg(msg) strictly between send and OK.
        bool delivered = false;
        for (std::size_t j = send_pos + 1; j < i; ++j) {
          if (ev[j].kind == ActionKind::kReceiveMsg && ev[j].msg_id == msg) {
            delivered = true;
            break;
          }
        }
        if (!delivered) ++out.order;
        break;
      }

      case ActionKind::kReceiveMsg: {
        const std::uint64_t msg = ev[i].msg_id;
        // Causality: a send_msg(msg) strictly before.
        bool sent = false;
        for (std::size_t j = 0; j < i; ++j) {
          if (ev[j].kind == ActionKind::kSendMsg && ev[j].msg_id == msg) {
            sent = true;
            break;
          }
        }
        if (!sent) ++out.causality;

        // No-duplication: an earlier delivery of msg with no crash^R in
        // between.
        for (std::size_t j = i; j-- > 0;) {
          if (ev[j].kind == ActionKind::kCrashR) break;
          if (ev[j].kind == ActionKind::kReceiveMsg && ev[j].msg_id == msg) {
            ++out.duplication;
            break;
          }
        }

        // No-replay: let b be the last boundary before i; violation iff
        // msg was completed (its send followed by OK/crash^T, that
        // completion occurring before b).
        bool have_boundary = false;
        std::size_t b = 0;
        for (std::size_t j = i; j-- > 0;) {
          if (is_boundary(ev[j])) {
            have_boundary = true;
            b = j;
            break;
          }
        }
        if (have_boundary && sent) {
          // Completion position: the first OK/crash^T after msg's send
          // with msg in flight.
          bool completed_before_boundary = false;
          for (std::size_t j = 0; j < b; ++j) {
            if (ev[j].kind == ActionKind::kSendMsg && ev[j].msg_id == msg) {
              for (std::size_t k = j + 1; k < b; ++k) {
                if (ev[k].kind == ActionKind::kSendMsg) break;
                if (ev[k].kind == ActionKind::kOk ||
                    ev[k].kind == ActionKind::kCrashT) {
                  completed_before_boundary = true;
                  break;
                }
              }
            }
          }
          if (completed_before_boundary) ++out.replay;
        }
        break;
      }

      default:
        break;
    }
  }
  return out;
}

void expect_agreement(const DataLink& link, const std::string& label) {
  const ViolationCounts ref = reference_check(link.trace());
  const ViolationCounts& online = link.checker().violations();
  EXPECT_EQ(ref.causality, online.causality) << label;
  EXPECT_EQ(ref.order, online.order) << label;
  EXPECT_EQ(ref.duplication, online.duplication) << label;
  EXPECT_EQ(ref.replay, online.replay) << label;
  EXPECT_EQ(ref.axiom, online.axiom) << label;
}

TEST(CheckerDifferential, GhmUnderChaos) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    DataLinkConfig cfg;
    cfg.retry_every = 3;
    FaultProfile p = FaultProfile::chaos(0.15);
    p.crash_t = 0.002;
    p.crash_r = 0.002;
    auto pair = make_ghm(GrowthPolicy::geometric(1.0 / 1024), seed);
    DataLink link(std::move(pair.tm), std::move(pair.rm),
                  std::make_unique<RandomFaultAdversary>(p, Rng(seed)), cfg);
    (void)run_workload(link, {.messages = 40, .stop_on_stall = false},
                       Rng(seed + 100));
    expect_agreement(link, "ghm seed=" + std::to_string(seed));
  }
}

TEST(CheckerDifferential, BrokenAbpProducesIdenticalCounts) {
  // The differential must agree on traces that actually CONTAIN
  // violations, not just on clean ones.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    DataLinkConfig cfg;
    cfg.retry_every = 0;
    cfg.tx_timer_every = 4;
    FaultProfile p;
    p.duplicate = 0.3;
    p.reorder = 0.4;
    p.crash_t = 0.01;
    p.crash_r = 0.01;
    const StopWaitConfig sw{.modulus = 2};
    DataLink link(std::make_unique<StopWaitTransmitter>(sw),
                  std::make_unique<StopWaitReceiver>(sw),
                  std::make_unique<RandomFaultAdversary>(p, Rng(seed)), cfg);
    (void)run_workload(link, {.messages = 60, .stop_on_stall = false},
                       Rng(seed + 200));
    // Precondition for the test to be meaningful on at least some seeds:
    // violations do occur across this sweep (checked in aggregate below).
    expect_agreement(link, "abp seed=" + std::to_string(seed));
  }
}

TEST(CheckerDifferential, FixedNonceUnderReplayAttack) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    DataLinkConfig cfg;
    cfg.retry_every = 3;
    auto pair = make_fixed_nonce(6, seed);
    DataLink link(std::move(pair.tm), std::move(pair.rm),
                  std::make_unique<ReplayAttacker>(150, Rng(seed)), cfg);
    WorkloadConfig wl;
    wl.messages = 120;
    wl.max_steps_per_message = 2000;
    wl.drain_steps = 20000;
    wl.stop_on_stall = false;
    (void)run_workload(link, wl, Rng(seed + 300));
    expect_agreement(link, "fixed-nonce seed=" + std::to_string(seed));
  }
}

}  // namespace
}  // namespace s2d
