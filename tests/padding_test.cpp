// Length-hiding padding decorators (§2.5 encryption discussion).
#include "core/padding.h"

#include <gtest/gtest.h>

#include "adversary/adversaries.h"
#include "core/ghm.h"
#include "harness/runner.h"
#include "link/datalink.h"

namespace s2d {
namespace {

constexpr double kEps = 1.0 / (1 << 16);
constexpr std::size_t kBucket = 96;

DataLink padded_link(std::unique_ptr<Adversary> adv, std::uint64_t seed) {
  DataLinkConfig cfg;
  cfg.retry_every = 3;
  auto pair = make_ghm(GrowthPolicy::geometric(kEps), seed);
  return DataLink(
      std::make_unique<PaddedTransmitter>(std::move(pair.tm), kBucket),
      std::make_unique<PaddedReceiver>(std::move(pair.rm), kBucket),
      std::move(adv), cfg);
}

TEST(Padding, PadUnpadRoundTrip) {
  Rng rng(1);
  for (std::size_t n : {0u, 1u, 7u, 63u, 64u, 65u, 200u}) {
    Bytes pkt;
    for (std::size_t i = 0; i < n; ++i) {
      pkt.push_back(static_cast<std::byte>(rng.next_u64() & 0xff));
    }
    const Bytes padded = pad_to_bucket(pkt, 64);
    EXPECT_EQ(padded.size() % 64, 0u) << n;
    const auto back = unpad(padded);
    ASSERT_TRUE(back.has_value()) << n;
    EXPECT_EQ(*back, pkt) << n;
  }
}

TEST(Padding, BucketOneIsNoPadding) {
  Bytes pkt{std::byte{1}, std::byte{2}};
  const Bytes padded = pad_to_bucket(pkt, 1);
  const auto back = unpad(padded);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, pkt);
}

TEST(Padding, UnpadRejectsGarbage) {
  Bytes junk(40, std::byte{0xff});
  EXPECT_FALSE(unpad(junk).has_value());
  EXPECT_FALSE(unpad({}).has_value());
}

TEST(Padding, AllWirePacketsShareBucketMultiples) {
  DataLink link = padded_link(
      std::make_unique<BenignFifoAdversary>(0.1, Rng(2)), 3);
  (void)run_workload(link, {.messages = 20}, Rng(4));
  for (const auto& meta : link.tr_channel().history()) {
    EXPECT_EQ(meta.length % kBucket, 0u);
  }
  for (const auto& meta : link.rt_channel().history()) {
    EXPECT_EQ(meta.length % kBucket, 0u);
  }
  // Data and acks are now indistinguishable by length (both fit in one
  // bucket for this workload).
  EXPECT_EQ(link.tr_channel().history().front().length,
            link.rt_channel().history().front().length);
}

TEST(Padding, ProtocolStillFullyCorrectUnderChaos) {
  DataLink link = padded_link(
      std::make_unique<RandomFaultAdversary>(FaultProfile::chaos(0.15),
                                             Rng(5)),
      6);
  const RunReport r = run_workload(link, {.messages = 30}, Rng(7));
  EXPECT_EQ(r.completed, 30u);
  EXPECT_TRUE(link.checker().clean()) << link.checker().violations().summary();
}

TEST(Padding, CrashResetsPropagateThroughWrapper) {
  auto pair = make_ghm(GrowthPolicy::geometric(kEps), 8);
  PaddedTransmitter tx(std::move(pair.tm), kBucket);
  TxOutbox out;
  tx.on_send_msg({1, "x"}, out);
  EXPECT_TRUE(tx.busy());
  tx.on_crash();
  EXPECT_FALSE(tx.busy());
}

TEST(Padding, DefeatsLengthTargeting) {
  // The length-targeting adversary drops every packet longer than the ack
  // size. Unpadded: it suppresses the entire data stream and messages
  // stall (liveness pain). Padded: it cannot tell data from acks, so the
  // same rule hits both or neither.
  auto run_unpadded = [&](std::size_t min_drop) {
    DataLinkConfig cfg;
    cfg.retry_every = 3;
    auto pair = make_ghm(GrowthPolicy::geometric(kEps), 9);
    DataLink link(std::move(pair.tm), std::move(pair.rm),
                  std::make_unique<LengthTargetingAdversary>(min_drop, 1.0,
                                                             Rng(10)),
                  cfg);
    WorkloadConfig wl;
    wl.messages = 5;
    wl.max_steps_per_message = 3000;
    RunReport r = run_workload(link, wl, Rng(11));
    return r.completed;
  };
  // Threshold chosen between ack size (~20B) and data size (~40B):
  // unpadded data packets are all dropped -> nothing completes.
  EXPECT_EQ(run_unpadded(30), 0u);

  // Same adversary against the padded stack: every packet is one bucket
  // (96B >= 30), so "drop all long packets" now drops EVERYTHING — or,
  // with the threshold above the bucket, nothing. Either way there is no
  // selective starvation. Use threshold above bucket: all flows.
  DataLink link = padded_link(
      std::make_unique<LengthTargetingAdversary>(kBucket + 1, 1.0, Rng(12)),
      13);
  const RunReport r = run_workload(link, {.messages = 5}, Rng(14));
  EXPECT_EQ(r.completed, 5u);
}

TEST(Padding, NameReflectsComposition) {
  auto pair = make_ghm(GrowthPolicy::geometric(kEps), 15);
  PaddedTransmitter tx(std::move(pair.tm), kBucket);
  EXPECT_EQ(tx.name(), "padded(ghm-transmitter)");
  PaddedReceiver rx(std::move(pair.rm), kBucket);
  EXPECT_EQ(rx.name(), "padded(ghm-receiver)");
}

}  // namespace
}  // namespace s2d
