// The §5 non-causal channel extension: safety survives noise (mutated
// deliveries), liveness measurably does not — exactly the paper's closing
// claim ("our protocol satisfies all the correctness conditions except
// liveness, given that the causality condition is relaxed").
#include <gtest/gtest.h>

#include "adversary/adversaries.h"
#include "core/ghm.h"
#include "harness/runner.h"
#include "link/datalink.h"

namespace s2d {
namespace {

constexpr double kEps = 1.0 / (1 << 20);

DataLink noisy_link(double noise, std::uint64_t seed, bool allow = true,
                    NoiseAdversary::Mode mode = NoiseAdversary::Mode::kMutate) {
  DataLinkConfig cfg;
  // Noise steps consume the adversary's turn, so scale the retry cadence
  // with the noise rate to keep ack production below the drain rate.
  cfg.retry_every = 8;
  cfg.allow_noise = allow;
  cfg.noise_seed = seed * 977 + 5;
  auto pair = make_ghm(GrowthPolicy::geometric(kEps), seed);
  return DataLink(std::move(pair.tm), std::move(pair.rm),
                  std::make_unique<NoiseAdversary>(noise, 0.05,
                                                   Rng(seed * 31 + 7), mode),
                  cfg);
}

TEST(Noise, MutationsDisabledByDefault) {
  // Without allow_noise the executor must reject mutate decisions: the
  // base model's causality axiom stays intact. (The rejected decisions
  // consume scheduler turns, so the run is slower — but still clean and
  // still completes.)
  DataLink link = noisy_link(0.5, 1, /*allow=*/false);
  WorkloadConfig wl;
  wl.messages = 10;
  wl.max_steps_per_message = 200000;
  wl.stop_on_stall = false;
  const RunReport r = run_workload(link, wl, Rng(2));
  EXPECT_EQ(link.noise_deliveries(), 0u);
  EXPECT_EQ(r.completed, 10u);
  EXPECT_TRUE(link.checker().clean());
}

TEST(Noise, MutatedDeliveriesHappenWhenEnabled) {
  DataLink link = noisy_link(0.5, 3);
  (void)run_workload(link, {.messages = 10, .max_steps_per_message = 50000},
                     Rng(4));
  EXPECT_GT(link.noise_deliveries(), 0u);
}

TEST(Noise, MutationNoiseRelaxesSafetyOnlyProbabilistically) {
  // Mutation noise is *correlated with packet contents* (a flipped copy of
  // the in-flight data packet still carries the correct challenge), so —
  // unlike everything in the causal model — it can slip an accepted
  // packet-that-was-never-sent past the receiver. This is §2.5's point
  // that absolute causality is impossible under noise, and §5's relaxed
  // causality. The rate must stay a small fraction of the injected
  // mutants (most flips land outside the challenge/tau fields or break
  // the framing entirely).
  std::uint64_t violations = 0;
  std::uint64_t mutants = 0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    DataLink link = noisy_link(0.4, seed + 10);
    WorkloadConfig wl;
    wl.messages = 25;
    wl.max_steps_per_message = 100000;
    wl.stop_on_stall = false;
    (void)run_workload(link, wl, Rng(seed + 20));
    violations += link.checker().violations().safety_total();
    mutants += link.noise_deliveries();
  }
  ASSERT_GT(mutants, 500u);
  EXPECT_LT(static_cast<double>(violations),
            0.02 * static_cast<double>(mutants))
      << violations << " violations from " << mutants << " mutants";
}

TEST(Noise, RandomForgeryIsHarmless) {
  // The §5 malicious injector proper: random bytes of the right length,
  // uncorrelated with contents. The codec's structural redundancy rejects
  // essentially all of it, so both safety AND practical liveness survive —
  // the protocol's packet framing acts as the "semi-reliable lower layer"
  // filter of §2.5.
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    DataLink link = noisy_link(0.4, seed + 50, true,
                               NoiseAdversary::Mode::kForge);
    WorkloadConfig wl;
    wl.messages = 20;
    wl.max_steps_per_message = 200000;
    wl.stop_on_stall = false;
    const RunReport r = run_workload(link, wl, Rng(seed + 60));
    EXPECT_GT(link.noise_deliveries(), 50u);
    EXPECT_EQ(r.completed, 20u) << "seed=" << seed;
    EXPECT_TRUE(link.checker().clean())
        << "seed=" << seed << " " << link.checker().violations().summary();
  }
}

TEST(Noise, StateGrowsWithNoiseUnlikeCausalModel) {
  // Liveness degradation made visible: under the causal model the
  // receiver's state stabilises; under noise, current-length mutants keep
  // burning the epoch budget and the strings keep growing.
  DataLink causal = noisy_link(0.0, 30);
  (void)run_workload(causal, {.messages = 40}, Rng(31));

  DataLink noisy = noisy_link(0.45, 30);
  WorkloadConfig wl;
  wl.messages = 40;
  wl.max_steps_per_message = 200000;
  wl.stop_on_stall = false;
  (void)run_workload(noisy, wl, Rng(31));

  // Mutants only stress the epoch budget when the flips land inside the
  // challenge field, so growth is steady rather than explosive — but it
  // must be strictly beyond anything the causal model produces.
  EXPECT_GT(noisy.stats().max_rm_state_bits,
            causal.stats().max_rm_state_bits + 32);
}

TEST(Noise, EpochsNeverStabiliseUnderMutationNoise) {
  // The precise sense in which Theorem 9 dies in the non-causal model.
  // The liveness proof rests on the strings eventually outgrowing every
  // packet in the system; mutants always carry the *current* length, so
  // during a transfer whose genuine deliveries the channel withholds
  // (loss = 1, only mutants get through) the extension epochs climb for
  // as long as the noise keeps coming — no stabilisation, no OK, ever.
  // Causal control: with the same total blackout but no mutants, nothing
  // is charged to the budget and the epoch stays at 1.
  auto run_blocked = [](double noise, std::uint64_t seed) {
    DataLinkConfig cfg;
    cfg.retry_every = 4;
    cfg.allow_noise = true;
    cfg.noise_seed = seed;
    auto pair = make_ghm(GrowthPolicy::geometric(kEps), seed);
    const GhmTransmitter* tm = pair.tm.get();
    DataLink link(std::move(pair.tm), std::move(pair.rm),
                  std::make_unique<NoiseAdversary>(noise, /*loss=*/1.0,
                                                   Rng(seed)),
                  cfg);
    // Empty payload: every bit flip lands in a protocol field, so no
    // mutant can complete the handshake "by accident" the way a flip
    // confined to payload bytes could (delivering a corrupted payload —
    // which the link-layer model does not even consider an error).
    link.offer({1, ""});
    // A lucky chain of mutants can even complete the handshake (e.g. a
    // flip confined to the message-id field delivers a forged id and sets
    // tau^R = tau^T — the relaxed-causality effects in action), so we do
    // not assert deadlock; we assert the epoch climb, the non-stabilising
    // behaviour Theorem 9 rules out in the causal model.
    (void)link.run_until_ok(5000);
    return tm->epoch();
  };
  EXPECT_GE(run_blocked(0.7, 91), 3u);   // kept climbing the whole time
  EXPECT_EQ(run_blocked(0.0, 91), 1u);   // blackout, causal: no growth
}

TEST(Noise, MutatedPacketsMostlyFailToDecode) {
  // Structural check on the mutation plumbing: a mutated copy differs from
  // the original in 1..3 bits (same length).
  DataLinkConfig cfg;
  cfg.retry_every = 1;
  cfg.allow_noise = true;
  cfg.record_packet_events = true;
  auto pair = make_ghm(GrowthPolicy::geometric(kEps), 40);
  DataLink link(std::move(pair.tm), std::move(pair.rm),
                std::make_unique<ScriptedAdversary>(std::vector<Decision>{
                    Decision::mutate_rt(0),
                }),
                cfg);
  link.offer({1, "x"});
  link.step();  // RETRY emits ack#0, adversary delivers its mutant
  EXPECT_EQ(link.noise_deliveries(), 1u);
  // The mutant has the original's length (recorded on the receive event).
  const auto& events = link.trace().events();
  std::size_t sent_len = 0;
  std::size_t recv_len = 0;
  for (const auto& e : events) {
    if (e.kind == ActionKind::kSendPktRT) sent_len = e.pkt_len;
    if (e.kind == ActionKind::kReceivePktRT) recv_len = e.pkt_len;
  }
  EXPECT_EQ(sent_len, recv_len);
  EXPECT_GT(sent_len, 0u);
}

}  // namespace
}  // namespace s2d
