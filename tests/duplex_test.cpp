#include "core/duplex.h"

#include <gtest/gtest.h>

#include "adversary/adversaries.h"

namespace s2d {
namespace {

constexpr double kEps = 1.0 / (1 << 16);

Duplex make_chaos_duplex(std::uint64_t seed, double pressure = 0.15) {
  DataLinkConfig cfg;
  cfg.retry_every = 3;
  return make_duplex(GrowthPolicy::geometric(kEps), seed,
                     [&](std::uint64_t dir_seed) {
                       return std::make_unique<RandomFaultAdversary>(
                           FaultProfile::chaos(pressure), Rng(dir_seed));
                     },
                     cfg);
}

TEST(Duplex, BothDirectionsDeliverInOrder) {
  Duplex duplex = make_chaos_duplex(1);
  duplex.send(Endpoint::kA, "a1");
  duplex.send(Endpoint::kB, "b1");
  duplex.send(Endpoint::kA, "a2");
  duplex.send(Endpoint::kB, "b2");
  ASSERT_TRUE(duplex.pump_until_idle(200000));

  const auto at_b = duplex.take_received(Endpoint::kB);
  ASSERT_EQ(at_b.size(), 2u);
  EXPECT_EQ(at_b[0].payload, "a1");
  EXPECT_EQ(at_b[1].payload, "a2");

  const auto at_a = duplex.take_received(Endpoint::kA);
  ASSERT_EQ(at_a.size(), 2u);
  EXPECT_EQ(at_a[0].payload, "b1");
  EXPECT_EQ(at_a[1].payload, "b2");

  EXPECT_TRUE(duplex.clean());
}

TEST(Duplex, DirectionsAreIndependent) {
  // Jam one direction entirely; the other must be unaffected.
  DataLinkConfig cfg;
  cfg.retry_every = 3;
  cfg.collect_deliveries = true;
  auto make_ab = [&] {
    auto pair = make_ghm(GrowthPolicy::geometric(kEps), 11);
    return std::make_unique<DataLink>(
        std::move(pair.tm), std::move(pair.rm),
        std::make_unique<SilentAdversary>(), cfg);  // A->B jammed
  };
  auto make_ba = [&] {
    auto pair = make_ghm(GrowthPolicy::geometric(kEps), 12);
    return std::make_unique<DataLink>(
        std::move(pair.tm), std::move(pair.rm),
        std::make_unique<BenignFifoAdversary>(0.0, Rng(13)), cfg);
  };
  Duplex duplex(make_ab(), make_ba());
  duplex.send(Endpoint::kA, "stuck");
  duplex.send(Endpoint::kB, "flows");
  duplex.pump(2000);
  EXPECT_FALSE(duplex.idle());  // A->B can never finish
  const auto at_a = duplex.take_received(Endpoint::kA);
  ASSERT_EQ(at_a.size(), 1u);
  EXPECT_EQ(at_a[0].payload, "flows");
  EXPECT_TRUE(duplex.take_received(Endpoint::kB).empty());
}

TEST(Duplex, ConversationUnderSustainedChaos) {
  Duplex duplex = make_chaos_duplex(21, 0.2);
  for (int round = 0; round < 30; ++round) {
    duplex.send(Endpoint::kA, "ping" + std::to_string(round));
    duplex.send(Endpoint::kB, "pong" + std::to_string(round));
  }
  ASSERT_TRUE(duplex.pump_until_idle(2000000));
  EXPECT_EQ(duplex.take_received(Endpoint::kA).size(), 30u);
  EXPECT_EQ(duplex.take_received(Endpoint::kB).size(), 30u);
  EXPECT_TRUE(duplex.clean());
}

TEST(Duplex, SessionAccessorsExposeStatus) {
  Duplex duplex = make_chaos_duplex(31);
  const auto id = duplex.send(Endpoint::kA, "tracked");
  ASSERT_TRUE(duplex.pump_until_idle(200000));
  EXPECT_EQ(duplex.session(Endpoint::kA).status(id),
            Session::Status::kCompleted);
}

}  // namespace
}  // namespace s2d
