// Unit tests for GhmReceiver: drive the module directly with crafted
// packets, checking each branch of the Figure 5 acceptance rule.
#include "core/receiver.h"

#include <gtest/gtest.h>

namespace s2d {
namespace {

constexpr double kEps = 1.0 / 1024.0;

GhmReceiver make_rx(std::uint64_t seed = 1) {
  return GhmReceiver(GrowthPolicy::geometric(kEps), Rng(seed));
}

// Sends (m, rho, tau) to the receiver; returns delivered messages.
std::vector<Message> push(GhmReceiver& rx, const Message& m,
                          const BitString& rho, const BitString& tau) {
  RxOutbox out;
  rx.on_receive_pkt(DataPacket{m, rho, tau}.encode(), out);
  const auto d = out.delivered();
  return {d.begin(), d.end()};
}

TEST(GhmReceiver, InitialStateMatchesPostCrash) {
  GhmReceiver rx = make_rx();
  EXPECT_EQ(rx.tau(), GhmReceiver::tau_crash());
  EXPECT_EQ(rx.epoch(), 1u);
  EXPECT_EQ(rx.wrong_count(), 0u);
  EXPECT_EQ(rx.rho().size(), GrowthPolicy::geometric(kEps).size(1));
}

TEST(GhmReceiver, RetryEmitsCurrentStateAndIncrementsCounter) {
  GhmReceiver rx = make_rx();
  RxOutbox out;
  rx.on_retry(out);
  rx.on_retry(out);
  ASSERT_EQ(out.pkt_count(), 2u);
  const auto a1 = AckPacket::decode(out.pkt(0));
  const auto a2 = AckPacket::decode(out.pkt(1));
  ASSERT_TRUE(a1 && a2);
  EXPECT_EQ(a1->rho, rx.rho());
  EXPECT_EQ(a1->tau, GhmReceiver::tau_crash());
  EXPECT_EQ(a1->retry + 1, a2->retry);
}

TEST(GhmReceiver, DeliversOnMatchingChallengeAndFreshTau) {
  GhmReceiver rx = make_rx();
  Rng rng(99);
  const BitString tau = BitString::from_binary("1").concat(
      BitString::random(20, rng));  // incomparable with tau_crash="0"
  const auto delivered = push(rx, {5, "hi"}, rx.rho(), tau);
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].id, 5u);
  EXPECT_EQ(rx.tau(), tau);
  EXPECT_EQ(rx.deliveries(), 1u);
}

TEST(GhmReceiver, ChallengeRotatesAfterDelivery) {
  GhmReceiver rx = make_rx();
  Rng rng(98);
  const BitString old_rho = rx.rho();
  const BitString tau =
      BitString::from_binary("1").concat(BitString::random(20, rng));
  push(rx, {5, "hi"}, old_rho, tau);
  EXPECT_NE(rx.rho(), old_rho);
  // Replaying the exact same packet must not deliver again: the challenge
  // has rotated.
  const auto delivered = push(rx, {5, "hi"}, old_rho, tau);
  EXPECT_TRUE(delivered.empty());
}

TEST(GhmReceiver, DuplicateWithSameTauSilentlyAccepted) {
  GhmReceiver rx = make_rx();
  Rng rng(97);
  const BitString tau =
      BitString::from_binary("1").concat(BitString::random(20, rng));
  push(rx, {5, "hi"}, rx.rho(), tau);
  // Same tau, new (current) challenge: prefix(tau^R, tau) holds, so this
  // is recognised as the same message — no duplicate delivery.
  const auto delivered = push(rx, {5, "hi"}, rx.rho(), tau);
  EXPECT_TRUE(delivered.empty());
  EXPECT_EQ(rx.deliveries(), 1u);
}

TEST(GhmReceiver, ExtendedTauAdoptedWithoutRedelivery) {
  GhmReceiver rx = make_rx();
  Rng rng(96);
  const BitString tau1 =
      BitString::from_binary("1").concat(BitString::random(20, rng));
  push(rx, {5, "hi"}, rx.rho(), tau1);
  const BitString tau2 = tau1.concat(BitString::random(12, rng));
  const auto delivered = push(rx, {5, "hi"}, rx.rho(), tau2);
  EXPECT_TRUE(delivered.empty());
  EXPECT_EQ(rx.tau(), tau2);  // adopted the extension
}

TEST(GhmReceiver, StaleTauPrefixIgnored) {
  GhmReceiver rx = make_rx();
  Rng rng(95);
  const BitString tau1 =
      BitString::from_binary("1").concat(BitString::random(20, rng));
  const BitString tau2 = tau1.concat(BitString::random(12, rng));
  push(rx, {5, "hi"}, rx.rho(), tau2);
  // An older packet of the same message (tau1 is a strict prefix of the
  // accepted tau2): ignored, no state change.
  const auto delivered = push(rx, {5, "old"}, rx.rho(), tau1);
  EXPECT_TRUE(delivered.empty());
  EXPECT_EQ(rx.tau(), tau2);
}

TEST(GhmReceiver, WrongFullLengthChallengeCountsTowardsBound) {
  GhmReceiver rx = make_rx(7);
  Rng rng(94);
  const BitString tau =
      BitString::from_binary("1").concat(BitString::random(20, rng));
  BitString wrong = BitString::random(rx.rho().size(), rng);
  ASSERT_NE(wrong, rx.rho());
  push(rx, {5, "x"}, wrong, tau);
  EXPECT_EQ(rx.wrong_count(), 1u);
  EXPECT_EQ(rx.epoch(), 1u);
}

TEST(GhmReceiver, ChallengeExtendsAfterBoundWrongPackets) {
  GhmReceiver rx = make_rx(8);
  Rng rng(93);
  const GrowthPolicy policy = GrowthPolicy::geometric(kEps);
  const std::size_t len1 = rx.rho().size();
  const BitString old_rho = rx.rho();
  const BitString tau =
      BitString::from_binary("1").concat(BitString::random(20, rng));
  // bound(1) wrong packets of the current length trigger the extension.
  for (std::uint64_t i = 0; i < policy.bound(1); ++i) {
    BitString wrong = BitString::random(len1, rng);
    ASSERT_NE(wrong, rx.rho());
    push(rx, {5, "x"}, wrong, tau);
  }
  EXPECT_EQ(rx.epoch(), 2u);
  EXPECT_EQ(rx.wrong_count(), 0u);
  EXPECT_EQ(rx.rho().size(), len1 + policy.size(2));
  // The old challenge survives as a prefix (extension, not replacement).
  EXPECT_TRUE(old_rho.is_prefix_of(rx.rho()));
}

TEST(GhmReceiver, ShortStaleChallengeNotCounted) {
  GhmReceiver rx = make_rx(9);
  Rng rng(92);
  const BitString tau =
      BitString::from_binary("1").concat(BitString::random(20, rng));
  // A packet with a shorter-than-current challenge is provably old: it
  // must neither deliver nor count towards num (liveness requirement).
  BitString shorter = BitString::random(rx.rho().size() - 1, rng);
  push(rx, {5, "x"}, shorter, tau);
  EXPECT_EQ(rx.wrong_count(), 0u);
  // Longer than current is equally stale.
  BitString longer = BitString::random(rx.rho().size() + 10, rng);
  push(rx, {5, "x"}, longer, tau);
  EXPECT_EQ(rx.wrong_count(), 0u);
}

TEST(GhmReceiver, CrashResetsEverything) {
  GhmReceiver rx = make_rx(10);
  Rng rng(91);
  const BitString tau =
      BitString::from_binary("1").concat(BitString::random(20, rng));
  push(rx, {5, "x"}, rx.rho(), tau);
  const BitString rho_before = rx.rho();
  rx.on_crash();
  EXPECT_EQ(rx.tau(), GhmReceiver::tau_crash());
  EXPECT_NE(rx.rho(), rho_before);
  EXPECT_EQ(rx.epoch(), 1u);
  EXPECT_EQ(rx.retry_counter(), 1u);
}

TEST(GhmReceiver, DeliversFirstMessageAfterCrashThanksToTauCrash) {
  GhmReceiver rx = make_rx(11);
  Rng rng(90);
  // After a crash tau^R = "0"; any transmitter tau starts with "1", so the
  // prefix checks both fail and the message is delivered.
  rx.on_crash();
  const BitString tau =
      BitString::from_binary("1").concat(BitString::random(20, rng));
  const auto delivered = push(rx, {6, "fresh"}, rx.rho(), tau);
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].id, 6u);
}

TEST(GhmReceiver, MalformedPacketIgnored) {
  GhmReceiver rx = make_rx(12);
  RxOutbox out;
  Bytes junk(13, std::byte{0x5c});
  rx.on_receive_pkt(junk, out);
  EXPECT_TRUE(out.delivered().empty());
  EXPECT_EQ(rx.wrong_count(), 0u);
}

TEST(GhmReceiver, AckPacketOnDataChannelIgnored) {
  GhmReceiver rx = make_rx(13);
  RxOutbox out;
  rx.on_receive_pkt(AckPacket{rx.rho(), rx.tau(), 1}.encode(), out);
  EXPECT_TRUE(out.delivered().empty());
}

TEST(GhmReceiver, StateBitsGrowWithChallenge) {
  GhmReceiver rx = make_rx(14);
  Rng rng(89);
  const std::size_t before = rx.state_bits();
  const GrowthPolicy policy = GrowthPolicy::geometric(kEps);
  const BitString tau =
      BitString::from_binary("1").concat(BitString::random(20, rng));
  for (std::uint64_t i = 0; i < policy.bound(1); ++i) {
    push(rx, {5, "x"}, BitString::random(rx.rho().size(), rng), tau);
  }
  EXPECT_GT(rx.state_bits(), before);
}

TEST(GhmReceiver, RetryCounterResetsOnDelivery) {
  GhmReceiver rx = make_rx(15);
  Rng rng(88);
  RxOutbox out;
  rx.on_retry(out);
  rx.on_retry(out);
  rx.on_retry(out);
  EXPECT_EQ(rx.retry_counter(), 4u);
  const BitString tau =
      BitString::from_binary("1").concat(BitString::random(20, rng));
  push(rx, {5, "x"}, rx.rho(), tau);
  EXPECT_EQ(rx.retry_counter(), 1u);
}

}  // namespace
}  // namespace s2d
