#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace s2d {
namespace {

TEST(RunningStat, EmptyIsZeroMean) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat s;
  s.add(5.0);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStat, KnownMeanAndVariance) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations = 32.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, StddevIsSqrtVariance) {
  RunningStat s;
  for (int i = 1; i <= 10; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.stddev(), std::sqrt(s.variance()));
}

TEST(Samples, QuantilesOfKnownSequence) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.quantile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(s.quantile(1.0), 100.0, 1e-9);
  EXPECT_NEAR(s.p99(), 99.01, 0.5);
}

TEST(Samples, QuantileEmptyIsNaN) {
  Samples s;
  EXPECT_TRUE(std::isnan(s.quantile(0.5)));
}

TEST(Samples, MeanAndStddev) {
  Samples s;
  for (double x : {1.0, 2.0, 3.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 1.0);
}

TEST(Samples, AddAfterQuantileStillCorrect) {
  Samples s;
  s.add(3.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  s.add(0.5);  // invalidates cached sort
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 0.5);
}

TEST(Proportion, EstimateBasics) {
  Proportion p;
  for (int i = 0; i < 30; ++i) p.add(i < 3);
  EXPECT_DOUBLE_EQ(p.estimate(), 0.1);
  EXPECT_EQ(p.trials, 30u);
  EXPECT_EQ(p.successes, 3u);
}

TEST(Proportion, WilsonBracketsEstimate) {
  Proportion p;
  for (int i = 0; i < 200; ++i) p.add(i < 20);
  const auto ci = p.wilson();
  EXPECT_LT(ci.lo, 0.1);
  EXPECT_GT(ci.hi, 0.1);
  EXPECT_GE(ci.lo, 0.0);
  EXPECT_LE(ci.hi, 1.0);
}

TEST(Proportion, WilsonZeroSuccessesHasPositiveUpperBound) {
  // The key property for near-zero violation rates: 0/n gives a
  // nonzero upper bound that shrinks with n.
  Proportion small;
  for (int i = 0; i < 10; ++i) small.add(false);
  Proportion large;
  for (int i = 0; i < 10000; ++i) large.add(false);
  EXPECT_EQ(small.wilson().lo, 0.0);
  EXPECT_GT(small.wilson().hi, 0.0);
  EXPECT_LT(large.wilson().hi, small.wilson().hi);
}

TEST(Proportion, WilsonNoTrials) {
  Proportion p;
  const auto ci = p.wilson();
  EXPECT_EQ(ci.lo, 0.0);
  EXPECT_EQ(ci.hi, 1.0);
}

TEST(SamplesMerge, PoolsBothPopulations) {
  Samples a;
  a.add(3.0);
  a.add(1.0);
  Samples b;
  b.add(2.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  EXPECT_DOUBLE_EQ(a.median(), 2.0);
}

TEST(SamplesMerge, EmptySidesAreNoops) {
  Samples a;
  a.add(5.0);
  Samples empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 5.0);
}

TEST(SamplesMerge, CanonicalizeMakesOrderIrrelevant) {
  Samples ab;
  ab.add(1.0);
  ab.add(2.0);
  Samples b;
  b.add(2.0);
  Samples ba;
  ba.merge(b);
  ba.add(1.0);
  ab.canonicalize();
  ba.canonicalize();
  EXPECT_EQ(ab.values(), ba.values());
}

TEST(RunningStatMerge, MatchesSinglePass) {
  RunningStat whole;
  RunningStat left;
  RunningStat right;
  const double xs[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (int i = 0; i < 8; ++i) {
    whole.add(xs[i]);
    (i < 3 ? left : right).add(xs[i]);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_DOUBLE_EQ(left.mean(), whole.mean());
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-12);
  EXPECT_EQ(left.min(), whole.min());
  EXPECT_EQ(left.max(), whole.max());
}

TEST(RunningStatMerge, EmptySidesAreNoops) {
  RunningStat a;
  a.add(1.0);
  RunningStat empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  RunningStat e2;
  e2.merge(a);
  EXPECT_EQ(e2.count(), 1u);
  EXPECT_DOUBLE_EQ(e2.mean(), 1.0);
}

TEST(ProportionMerge, SumsSuccessesAndTrials) {
  Proportion a;
  a.add(true);
  a.add(false);
  Proportion b;
  b.add(true);
  a.merge(b);
  EXPECT_EQ(a.successes, 2u);
  EXPECT_EQ(a.trials, 3u);
}

}  // namespace
}  // namespace s2d
