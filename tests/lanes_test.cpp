#include "core/lanes.h"

#include <gtest/gtest.h>

#include "adversary/adversaries.h"
#include "core/ghm.h"

namespace s2d {
namespace {

constexpr double kEps = 1.0 / (1 << 16);

LaneStripe make_stripe(std::size_t n, std::uint64_t seed,
                       double pressure = 0.1) {
  std::vector<std::unique_ptr<DataLink>> lanes;
  for (std::size_t k = 0; k < n; ++k) {
    DataLinkConfig cfg;
    cfg.retry_every = 3;
    cfg.collect_deliveries = true;
    auto pair = make_ghm(GrowthPolicy::geometric(kEps), seed * 100 + k);
    lanes.push_back(std::make_unique<DataLink>(
        std::move(pair.tm), std::move(pair.rm),
        std::make_unique<RandomFaultAdversary>(FaultProfile::chaos(pressure),
                                               Rng(seed * 200 + k)),
        cfg));
  }
  return LaneStripe(std::move(lanes));
}

TEST(LaneStripe, SingleLaneBehavesLikePlainSession) {
  LaneStripe stripe = make_stripe(1, 1);
  stripe.send("a");
  stripe.send("b");
  ASSERT_TRUE(stripe.pump_until_idle(200000));
  const auto got = stripe.take_received();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].payload, "a");
  EXPECT_EQ(got[1].payload, "b");
}

TEST(LaneStripe, GlobalOrderPreservedAcrossLanes) {
  LaneStripe stripe = make_stripe(4, 2, 0.15);
  std::vector<std::string> sent;
  for (int i = 0; i < 40; ++i) {
    sent.push_back("msg-" + std::to_string(i));
    stripe.send(sent.back());
  }
  ASSERT_TRUE(stripe.pump_until_idle(2000000));
  const auto got = stripe.take_received();
  ASSERT_EQ(got.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(got[i].payload, sent[i]) << i;
  }
  EXPECT_TRUE(stripe.clean());
}

TEST(LaneStripe, ResequencerHoldsFastLanes) {
  // Lane 0 is jammed; lanes 1..3 complete quickly. Nothing past the stuck
  // message may be released until lane 0 catches up — here, never.
  std::vector<std::unique_ptr<DataLink>> lanes;
  for (std::size_t k = 0; k < 4; ++k) {
    DataLinkConfig cfg;
    cfg.retry_every = 3;
    cfg.collect_deliveries = true;
    auto pair = make_ghm(GrowthPolicy::geometric(kEps), 300 + k);
    std::unique_ptr<Adversary> adv;
    if (k == 1) {  // seq 1 goes to lane 1 % 4 = 1
      adv = std::make_unique<SilentAdversary>();
    } else {
      adv = std::make_unique<BenignFifoAdversary>(0.0, Rng(400 + k));
    }
    lanes.push_back(std::make_unique<DataLink>(
        std::move(pair.tm), std::move(pair.rm), std::move(adv), cfg));
  }
  LaneStripe stripe(std::move(lanes));
  for (int i = 0; i < 8; ++i) stripe.send("m" + std::to_string(i));
  stripe.pump(2000);
  const auto got = stripe.take_received();
  EXPECT_TRUE(got.empty());  // seq 1 (lane 1) never arrives; all held
  EXPECT_GT(stripe.reorder_buffer_size(), 0u);
  EXPECT_FALSE(stripe.idle());
}

TEST(LaneStripe, MoreLanesFewerStepsPerMessage) {
  // The throughput claim: with N lanes, N messages progress per pump tick,
  // so the total step budget to drain a fixed workload drops.
  auto steps_for = [](std::size_t n) {
    LaneStripe stripe = make_stripe(n, 50, 0.0);
    for (int i = 0; i < 48; ++i) stripe.send("payload");
    EXPECT_TRUE(stripe.pump_until_idle(500000));
    // Wall-clock proxy: max steps over lanes (lanes advance in parallel).
    std::uint64_t max_steps = 0;
    (void)max_steps;
    return stripe.total_steps() / n;  // per-lane steps ~ wall time
  };
  const std::uint64_t s1 = steps_for(1);
  const std::uint64_t s4 = steps_for(4);
  EXPECT_LT(s4, s1);
}

TEST(LaneStripe, CleanAcrossLanesUnderChaos) {
  LaneStripe stripe = make_stripe(3, 60, 0.2);
  for (int i = 0; i < 30; ++i) stripe.send("x" + std::to_string(i));
  ASSERT_TRUE(stripe.pump_until_idle(5000000));
  EXPECT_TRUE(stripe.clean());
  EXPECT_EQ(stripe.take_received().size(), 30u);
  EXPECT_EQ(stripe.reorder_buffer_size(), 0u);
}

}  // namespace
}  // namespace s2d
