#include "transport/relay.h"

#include <gtest/gtest.h>

namespace s2d {
namespace {

Bytes packet_of(std::string_view s) {
  Bytes out;
  for (char c : s) out.push_back(static_cast<std::byte>(c));
  return out;
}

/// Pumps the network until quiet, feeding frames through the relay;
/// returns packets delivered at `watch` node.
std::vector<Bytes> pump(Network& net, Relay& relay, NodeId watch,
                        std::uint64_t max_steps = 200) {
  std::vector<Bytes> delivered;
  for (std::uint64_t t = 0; t < max_steps; ++t) {
    net.step();
    for (NodeId node = 0; node < net.graph().node_count(); ++node) {
      while (auto arrival = net.poll(node)) {
        if (auto d = relay.on_frame(net, node, *arrival)) {
          if (node == watch) delivered.push_back(std::move(d->packet));
        }
      }
    }
  }
  return delivered;
}

TEST(RelayFrame, RoundTrip) {
  RelayFrame f;
  f.frame_id = 42;
  f.src = 1;
  f.dst = 5;
  f.ttl = 7;
  f.route = {1, 2, 3, 5};
  f.hop = 2;
  f.payload = packet_of("data");
  const auto g = RelayFrame::decode(f.encode(0xf2), 0xf2);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->frame_id, 42u);
  EXPECT_EQ(g->route, f.route);
  EXPECT_EQ(g->hop, 2u);
  EXPECT_EQ(g->payload, f.payload);
}

TEST(RelayFrame, WrongTagRejected) {
  RelayFrame f;
  f.payload = packet_of("x");
  EXPECT_FALSE(RelayFrame::decode(f.encode(0xf1), 0xf2).has_value());
}

TEST(RelayFrame, CorruptionDetectedByCrc) {
  RelayFrame f;
  f.payload = packet_of("payload");
  Bytes wire = f.encode(0xf1);
  wire[wire.size() / 2] ^= std::byte{0x01};
  EXPECT_FALSE(RelayFrame::decode(wire, 0xf1).has_value());
}

TEST(FloodingRelay, DeliversAcrossLine) {
  Network net(NetworkGraph::line(5), {}, Rng(1));
  FloodingRelay relay(8);
  relay.inject(net, 0, 4, packet_of("hello"));
  const auto got = pump(net, relay, 4);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], packet_of("hello"));
}

TEST(FloodingRelay, DedupSuppressesEcho) {
  // On a ring the flood reaches every node from two sides; dedup must
  // prevent infinite circulation, and the destination sees the packet
  // exactly once per injection.
  Network net(NetworkGraph::ring(6), {}, Rng(2));
  FloodingRelay relay(16);
  relay.inject(net, 0, 3, packet_of("once"));
  const auto got = pump(net, relay, 3);
  EXPECT_EQ(got.size(), 1u);
}

TEST(FloodingRelay, CostScalesWithEdges) {
  // Flooding cost is O(|E|) per packet: a denser graph costs more frames
  // for the same source/destination pair.
  Network sparse_net(NetworkGraph::line(8), {}, Rng(3));
  FloodingRelay sparse_relay(16);
  sparse_relay.inject(sparse_net, 0, 7, packet_of("p"));
  (void)pump(sparse_net, sparse_relay, 7);

  Network dense_net(NetworkGraph::grid(4, 4), {}, Rng(4));
  FloodingRelay dense_relay(16);
  dense_relay.inject(dense_net, 0, 15, packet_of("p"));
  (void)pump(dense_net, dense_relay, 15);

  EXPECT_GT(dense_relay.frames_sent(), sparse_relay.frames_sent());
}

TEST(FloodingRelay, TtlBoundsRadius) {
  Network net(NetworkGraph::line(10), {}, Rng(5));
  FloodingRelay relay(/*ttl=*/3);  // can cover at most 4 hops
  relay.inject(net, 0, 9, packet_of("far"));
  const auto got = pump(net, relay, 9);
  EXPECT_TRUE(got.empty());
}

TEST(FloodingRelay, SurvivesLinkFailure) {
  // Grid with a failed central link: flooding routes around it.
  Network net(NetworkGraph::grid(3, 3), {}, Rng(6));
  net.set_link_up(3, 4, false);
  net.set_link_up(4, 5, false);
  FloodingRelay relay(16);
  relay.inject(net, 0, 8, packet_of("around"));
  const auto got = pump(net, relay, 8);
  ASSERT_EQ(got.size(), 1u);
}

TEST(PathRelay, DeliversAlongShortestPath) {
  Network net(NetworkGraph::grid(3, 3), {}, Rng(7));
  PathRelay relay;
  relay.inject(net, 0, 8, packet_of("direct"));
  const auto got = pump(net, relay, 8);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], packet_of("direct"));
  // Shortest path 0..8 on a 3x3 grid has 4 hops.
  EXPECT_EQ(relay.frames_sent(), 4u);
  EXPECT_EQ(relay.reroutes(), 0u);
}

TEST(PathRelay, CheaperThanFloodingWhenQuiet) {
  Network net_a(NetworkGraph::grid(4, 4), {}, Rng(8));
  PathRelay path;
  path.inject(net_a, 0, 15, packet_of("p"));
  (void)pump(net_a, path, 15);

  Network net_b(NetworkGraph::grid(4, 4), {}, Rng(9));
  FloodingRelay flood(16);
  flood.inject(net_b, 0, 15, packet_of("p"));
  (void)pump(net_b, flood, 15);

  EXPECT_LT(path.frames_sent(), flood.frames_sent());
}

TEST(PathRelay, ReroutesAroundObservedFailure) {
  Network net(NetworkGraph::ring(6), {}, Rng(10));
  net.set_link_up(1, 2, false);  // break the short way from 0 to 3
  PathRelay relay;
  relay.inject(net, 0, 3, packet_of("detour"));
  const auto got = pump(net, relay, 3);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_GE(relay.reroutes(), 1u);
  EXPECT_GE(relay.blacklisted_edges(), 1u);
}

TEST(PathRelay, RecoversWhenBlacklistExhausted) {
  // Break everything around the destination, then restore: the relay must
  // clear its blacklist and succeed on a later injection.
  Network net(NetworkGraph::line(3), {}, Rng(11));
  net.set_link_up(1, 2, false);
  PathRelay relay;
  relay.inject(net, 0, 2, packet_of("lost"));
  (void)pump(net, relay, 2);
  net.set_link_up(1, 2, true);
  relay.inject(net, 0, 2, packet_of("found"));
  const auto got = pump(net, relay, 2);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], packet_of("found"));
}

TEST(PathRelay, UnreachableDestinationDegradesToLoss) {
  Network net(NetworkGraph::line(3), {}, Rng(12));
  net.set_link_up(0, 1, false);
  net.set_link_up(1, 2, false);
  PathRelay relay;
  relay.inject(net, 0, 2, packet_of("void"));
  const auto got = pump(net, relay, 2, 50);
  EXPECT_TRUE(got.empty());  // dropped, no crash, no livelock
}

TEST(Relays, CorruptedFramesDropped) {
  NetworkConfig cfg;
  cfg.frame_corrupt = 1.0;  // every frame corrupted in transit
  Network net(NetworkGraph::line(2), cfg, Rng(13));
  PathRelay relay;
  relay.inject(net, 0, 1, packet_of("garbled"));
  const auto got = pump(net, relay, 1, 50);
  EXPECT_TRUE(got.empty());  // CRC catches every corruption
}

}  // namespace
}  // namespace s2d
