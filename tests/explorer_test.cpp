// Bounded exhaustive exploration: every adversary interleaving up to a
// depth bound, for GHM (expected: zero violating interleavings) and for
// the alternating-bit baseline (expected: the explorer automatically finds
// the [LMF88] crash counterexample).
#include "harness/explorer.h"

#include <gtest/gtest.h>

#include "adversary/adversaries.h"
#include "baseline/stopwait.h"
#include "core/ghm.h"
#include "harness/runner.h"

namespace s2d {
namespace {

constexpr double kEps = 1.0 / (1 << 16);

ScriptedLinkFactory ghm_factory(std::uint64_t seed) {
  return [seed](std::vector<Decision> script) {
    DataLinkConfig cfg;
    cfg.retry_every = 0;  // all timing flows through the script
    cfg.tx_timer_every = 0;
    cfg.keep_trace = false;
    auto pair = make_ghm(GrowthPolicy::geometric(kEps), seed);
    return DataLink(std::move(pair.tm), std::move(pair.rm),
                    std::make_unique<ScriptedAdversary>(std::move(script)),
                    cfg);
  };
}

ScriptedLinkFactory abp_factory(bool nonvolatile, bool resync) {
  return [nonvolatile, resync](std::vector<Decision> script) {
    DataLinkConfig cfg;
    cfg.retry_every = 0;
    cfg.tx_timer_every = 0;
    cfg.keep_trace = false;
    StopWaitConfig sw;
    sw.nonvolatile_seq = nonvolatile;
    sw.resync_on_crash = resync;
    return DataLink(std::make_unique<StopWaitTransmitter>(sw),
                    std::make_unique<StopWaitReceiver>(sw),
                    std::make_unique<ScriptedAdversary>(std::move(script)),
                    cfg);
  };
}

TEST(Explorer, GhmCleanToDepthFiveWithCrashes) {
  ExplorerConfig cfg;
  cfg.max_depth = 5;
  cfg.messages = 2;
  cfg.crashes = true;
  cfg.duplicates = true;
  cfg.retries = true;
  const ExplorerReport report = explore(ghm_factory(1), cfg);
  EXPECT_FALSE(report.truncated);
  EXPECT_GT(report.nodes, 1000u);
  EXPECT_TRUE(report.clean())
      << "counterexample of " << report.counterexample.size() << " steps: "
      << report.counterexample_violations.summary();
}

TEST(Explorer, GhmCleanDeeperWithoutCrashes) {
  ExplorerConfig cfg;
  cfg.max_depth = 7;
  cfg.messages = 2;
  cfg.crashes = false;
  cfg.duplicates = true;
  const ExplorerReport report = explore(ghm_factory(2), cfg);
  EXPECT_FALSE(report.truncated);
  EXPECT_TRUE(report.clean());
}

TEST(Explorer, FindsLmf88CounterexampleForAbp) {
  // The impossibility in action: with crashes in the option set, bounded
  // search must uncover a violating interleaving for the volatile
  // alternating-bit protocol.
  ExplorerConfig cfg;
  cfg.max_depth = 7;
  cfg.messages = 2;
  cfg.crashes = true;
  cfg.duplicates = false;   // crashes alone suffice
  cfg.retries = false;      // ABP is transmitter-driven
  cfg.tx_timer = true;
  const ExplorerReport report =
      explore(abp_factory(/*nonvolatile=*/false, /*resync=*/false), cfg);
  EXPECT_GT(report.violating_nodes, 0u);
  EXPECT_FALSE(report.counterexample.empty());
  EXPECT_LE(report.counterexample.size(), 7u);  // a short, minimal-ish script
}

TEST(Explorer, AbpCleanOnFifoSchedulesWithoutCrashes) {
  // On its home turf (FIFO delivery, no crashes, no duplicates) the
  // alternating-bit protocol is correct; the exhaustive pass must agree.
  ExplorerConfig cfg;
  cfg.max_depth = 9;
  cfg.messages = 2;
  cfg.crashes = false;
  cfg.duplicates = false;
  cfg.retries = false;
  cfg.tx_timer = true;
  cfg.fifo_only = true;
  const ExplorerReport report = explore(abp_factory(false, false), cfg);
  EXPECT_FALSE(report.truncated);
  EXPECT_TRUE(report.clean());
}

TEST(Explorer, FindsAbpReorderingCounterexampleWithoutCrashes) {
  // With out-of-order delivery in the option set (the default), the
  // explorer discovers the classical non-FIFO failure of the alternating
  // bit on its own: a stale retransmission of message 1 (seq 0) delivered
  // after message 2 (seq 1) wraps the receiver's expectation and is
  // accepted as new — duplication + replay with no crash involved.
  ExplorerConfig cfg;
  cfg.max_depth = 7;
  cfg.messages = 2;
  cfg.crashes = false;
  cfg.duplicates = false;
  cfg.retries = false;
  cfg.tx_timer = true;
  const ExplorerReport report = explore(abp_factory(false, false), cfg);
  EXPECT_GT(report.violating_nodes, 0u);
  EXPECT_FALSE(report.counterexample.empty());
  EXPECT_GT(report.counterexample_violations.duplication +
                report.counterexample_violations.replay,
            0u);
}

TEST(Explorer, NvbitResyncMeetsClassicalButNotGhmConditions) {
  // The sharpest exhibit of the [LMF88] impossibility this repository
  // produces. On FIFO schedules with crashes, the [BS88]-style protocol
  // (nonvolatile sequence state + crash resync) never confuses ORDER,
  // never duplicates, never delivers an unsent message — the classical
  // correctness notions hold. But the explorer finds that it cannot meet
  // the paper's stricter §2.6 no-replay condition: after
  //   [m1 OK'd; m2 sent; crash^T (m2 aborted); crash^R]
  // the old m2 frame still matches the receiver's surviving expectation
  // and is delivered — and a message aborted by crash^T is in M_alpha, so
  // that delivery is formally a replay. No deterministic protocol can
  // reject it (the receiver cannot know m2 was aborted); GHM rejects it
  // with probability 1 - eps because crash^R rotates the challenge.
  ExplorerConfig cfg;
  cfg.max_depth = 8;
  cfg.messages = 2;
  cfg.crashes = true;
  cfg.duplicates = false;
  cfg.retries = false;
  cfg.tx_timer = true;
  cfg.fifo_only = true;
  const ExplorerReport report =
      explore(abp_factory(/*nonvolatile=*/true, /*resync=*/true), cfg);
  EXPECT_FALSE(report.truncated);
  EXPECT_GT(report.violating_nodes, 0u);
  // Every violation found is of the replay kind; the classical conditions
  // are indeed clean.
  EXPECT_GT(report.counterexample_violations.replay, 0u);
  EXPECT_EQ(report.counterexample_violations.order, 0u);
  EXPECT_EQ(report.counterexample_violations.duplication, 0u);
  EXPECT_EQ(report.counterexample_violations.causality, 0u);
}

TEST(Explorer, GhmRejectsTheAbortThenCrashReplayScenario) {
  // The exact interleaving that defeats every deterministic baseline,
  // replayed against GHM as a directed script: m1 completes, m2 goes out,
  // both stations crash, and the adversary delivers the stale m2 data
  // packet. crash^R rotated the challenge, so the receiver must ignore it.
  auto factory = ghm_factory(7);
  // With retry_every = 0, RETRY must be scheduled explicitly:
  //   step 1: retry           -> ack#0 (challenge)
  //   step 2: deliver ack#0   -> TM learns rho, sends data#0 (m1)
  //   step 3: deliver data#0  -> receive_msg(m1), challenge rotates
  //   step 4: retry           -> ack#1 (confirms tau, offers new rho)
  //   step 5: deliver ack#1   -> OK; m2 offered, data#1 (m2) sent
  //   step 6: crash^T         -> m2 aborted
  //   step 7: crash^R         -> challenge rotates again
  //   step 8: deliver data#1  -> stale m2: must NOT be delivered
  DataLink link = factory({
      Decision::retry(),
      Decision::deliver_rt(0),
      Decision::deliver_tr(0),
      Decision::retry(),
      Decision::deliver_rt(1),
      Decision::crash_t(),
      Decision::crash_r(),
      Decision::deliver_tr(1),
  });
  Rng payload(0x9a9a);
  std::uint64_t next_msg = 1;
  auto maybe_offer = [&] {
    if (next_msg <= 2 && link.tm_ready()) {
      link.offer({next_msg, make_payload(2, payload)});
      ++next_msg;
    }
  };
  maybe_offer();
  for (int i = 0; i < 8; ++i) {
    link.step();
    maybe_offer();
  }
  EXPECT_EQ(link.checker().deliveries(), 1u);  // only m1, never stale m2
  EXPECT_TRUE(link.checker().clean())
      << link.checker().violations().summary();
}

TEST(Explorer, AbpBreaksUnderDuplicationEvenWithoutCrashes) {
  ExplorerConfig cfg;
  cfg.max_depth = 8;
  cfg.messages = 2;
  cfg.crashes = false;
  cfg.duplicates = true;
  cfg.retries = false;
  cfg.tx_timer = true;
  const ExplorerReport report = explore(abp_factory(false, false), cfg);
  EXPECT_GT(report.violating_nodes, 0u);
}

TEST(Explorer, CounterexampleReplays) {
  // A counterexample script must reproduce the violation deterministically
  // when replayed against a fresh system.
  ExplorerConfig cfg;
  cfg.max_depth = 7;
  cfg.messages = 2;
  cfg.crashes = true;
  cfg.duplicates = false;
  cfg.retries = false;
  cfg.tx_timer = true;
  auto factory = abp_factory(false, false);
  const ExplorerReport report = explore(factory, cfg);
  ASSERT_FALSE(report.counterexample.empty());

  DataLink link = factory(report.counterexample);
  Rng payload(0x9a9a);  // the explorer's fixed workload seed
  std::uint64_t next_msg = 1;
  auto maybe_offer = [&] {
    if (next_msg <= cfg.messages && link.tm_ready()) {
      link.offer({next_msg, make_payload(2, payload)});
      ++next_msg;
    }
  };
  maybe_offer();
  for (std::size_t i = 0; i < report.counterexample.size(); ++i) {
    link.step();
    maybe_offer();
  }
  EXPECT_GT(link.checker().violations().safety_total(), 0u);
}

TEST(Explorer, NodeBudgetTruncates) {
  ExplorerConfig cfg;
  cfg.max_depth = 12;
  cfg.max_nodes = 500;
  const ExplorerReport report = explore(ghm_factory(3), cfg);
  EXPECT_TRUE(report.truncated);
  EXPECT_LE(report.nodes, 501u);
}

}  // namespace
}  // namespace s2d
