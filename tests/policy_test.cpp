#include "core/policy.h"

#include "core/receiver.h"

#include <gtest/gtest.h>

#include <cmath>

namespace s2d {
namespace {

constexpr double kEps = 1.0 / 1024.0;

TEST(GrowthPolicy, AllSoundPoliciesSatisfyLemma4Budget) {
  for (const char* name : GrowthPolicy::kPolicyNames) {
    const GrowthPolicy p = GrowthPolicy::by_name(name, kEps);
    EXPECT_TRUE(p.sound()) << name << " budget=" << p.lemma4_budget();
    EXPECT_LE(p.lemma4_budget(), kEps / 4.0) << name;
  }
}

TEST(GrowthPolicy, BudgetHoldsAcrossEpsilonRange) {
  for (double eps : {0.25, 1.0 / 16, 1.0 / 256, 1.0 / 65536, 1e-9}) {
    for (const char* name : GrowthPolicy::kPolicyNames) {
      const GrowthPolicy p = GrowthPolicy::by_name(name, eps);
      EXPECT_LE(p.lemma4_budget(), eps / 4.0) << name << " eps=" << eps;
    }
  }
}

TEST(GrowthPolicy, SizeGrowsWithEpoch) {
  const GrowthPolicy p = GrowthPolicy::geometric(kEps);
  EXPECT_LT(p.size(1), p.size(2));
  EXPECT_LT(p.size(2), p.size(10));
}

TEST(GrowthPolicy, SizeGrowsWithSecurity) {
  const GrowthPolicy loose = GrowthPolicy::geometric(1.0 / 16);
  const GrowthPolicy tight = GrowthPolicy::geometric(1.0 / 65536);
  EXPECT_LT(loose.size(1), tight.size(1));
}

TEST(GrowthPolicy, GeometricBoundDoubles) {
  const GrowthPolicy p = GrowthPolicy::geometric(kEps);
  EXPECT_EQ(p.bound(1), 2u);
  EXPECT_EQ(p.bound(2), 4u);
  EXPECT_EQ(p.bound(10), 1024u);
}

TEST(GrowthPolicy, PaperLinearBoundAtLeastOne) {
  const GrowthPolicy p = GrowthPolicy::paper_linear(kEps);
  EXPECT_EQ(p.bound(1), 1u);
  EXPECT_EQ(p.bound(2), 1u);
  EXPECT_EQ(p.bound(7), 3u);
}

TEST(GrowthPolicy, BoundNoOverflowAtHugeEpochs) {
  const GrowthPolicy p = GrowthPolicy::aggressive(kEps);
  EXPECT_GT(p.bound(100), 0u);  // clamped, not wrapped to zero
  EXPECT_GT(p.bound(1000), 0u);
}

TEST(GrowthPolicy, FixedNonceNeverExtends) {
  const GrowthPolicy p = GrowthPolicy::fixed_nonce(8, kEps);
  EXPECT_EQ(p.size(1), 8u);
  EXPECT_EQ(p.size(5), 8u);
  EXPECT_EQ(p.bound(1), UINT64_MAX);
  EXPECT_FALSE(p.sound());
}

TEST(GrowthPolicy, NamesRoundTrip) {
  for (const char* name : GrowthPolicy::kPolicyNames) {
    EXPECT_EQ(GrowthPolicy::by_name(name, kEps).name(), name);
  }
}

TEST(GrowthPolicy, EpsilonStored) {
  EXPECT_DOUBLE_EQ(GrowthPolicy::geometric(kEps).epsilon(), kEps);
}

TEST(GrowthPolicy, CustomPolicyHonoursUserFunctions) {
  const GrowthPolicy p = GrowthPolicy::custom(
      "my-policy", kEps,
      [](std::uint64_t t) { return static_cast<std::size_t>(3 * t + 20); },
      [](std::uint64_t t) { return t; });
  EXPECT_EQ(p.name(), "my-policy");
  EXPECT_EQ(p.size(1), 23u);
  EXPECT_EQ(p.size(4), 32u);
  EXPECT_EQ(p.bound(5), 5u);
  EXPECT_TRUE(p.sound());
}

TEST(GrowthPolicy, CustomPolicyBudgetVerified) {
  // sum_t t * 2^-(3t+20) converges far below eps/4 for eps = 2^-10.
  const GrowthPolicy p = GrowthPolicy::custom(
      "tight", 1.0 / 1024,
      [](std::uint64_t t) { return static_cast<std::size_t>(3 * t + 20); },
      [](std::uint64_t t) { return t; });
  EXPECT_LE(p.lemma4_budget(), p.epsilon() / 4.0);
}

TEST(GrowthPolicy, CustomPolicyUsableByProtocol) {
  // A custom pair must drive the actual protocol machinery.
  const GrowthPolicy p = GrowthPolicy::custom(
      "chunky", kEps,
      [](std::uint64_t t) { return static_cast<std::size_t>(16 * t); },
      [](std::uint64_t) { return std::uint64_t{1}; });
  GhmReceiver rx(p, Rng(1));
  EXPECT_EQ(rx.rho().size(), 16u);
  Rng rng(2);
  RxOutbox out;
  // One wrong packet (bound = 1) must trigger an extension by size(2)=32.
  rx.on_receive_pkt(
      DataPacket{{1, "x"}, BitString::random(16, rng),
                 BitString::from_binary("1")}
          .encode(),
      out);
  EXPECT_EQ(rx.epoch(), 2u);
  EXPECT_EQ(rx.rho().size(), 48u);
}

TEST(GrowthPolicy, IncrementRules) {
  const GrowthPolicy plus = GrowthPolicy::geometric(kEps);
  EXPECT_EQ(plus.increment_rule(), GrowthPolicy::Increment::kPlusOne);
  EXPECT_EQ(plus.increment(1), 2u);
  EXPECT_EQ(plus.increment(100), 101u);

  const GrowthPolicy dbl =
      plus.with_increment(GrowthPolicy::Increment::kDouble);
  EXPECT_EQ(dbl.increment_rule(), GrowthPolicy::Increment::kDouble);
  EXPECT_EQ(dbl.increment(1), 2u);
  EXPECT_EQ(dbl.increment(2), 4u);
  EXPECT_EQ(dbl.increment(1024), 2048u);
  // Saturation, not wraparound (wraparound would be a safety bug; the
  // saturation liveness trap is measured in E12).
  EXPECT_EQ(dbl.increment(UINT64_MAX), UINT64_MAX);
  EXPECT_EQ(dbl.increment(UINT64_MAX / 2 + 1), UINT64_MAX);
  // The original is unchanged (value semantics).
  EXPECT_EQ(plus.increment_rule(), GrowthPolicy::Increment::kPlusOne);
}

TEST(GrowthPolicy, InitialStringLongEnoughForSecurity) {
  // size(1) must exceed log2(1/eps): a single fresh string already gives
  // collision probability below eps.
  for (double eps : {1.0 / 16, 1.0 / 1024, 1e-6}) {
    const GrowthPolicy p = GrowthPolicy::geometric(eps);
    EXPECT_GT(static_cast<double>(p.size(1)), std::log2(1.0 / eps));
  }
}

}  // namespace
}  // namespace s2d
