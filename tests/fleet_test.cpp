// Fleet engine tests: determinism across shard counts, seed-stream
// distinctness, aggregation algebra, and agreement with a hand-rolled
// serial baseline.
#include "fleet/fleet.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "util/parallel.h"

namespace s2d {
namespace {

FleetConfig small_fleet(unsigned threads) {
  FleetConfig cfg;
  cfg.sessions = 24;
  cfg.threads = threads;
  cfg.root_seed = 0xfee7;
  cfg.workload.messages = 5;
  cfg.workload.payload_bytes = 16;
  return cfg;
}

TEST(FleetSeeds, DistinctAcrossTenThousandSessions) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    seeds.insert(fleet_session_seed(/*root_seed=*/7, i));
  }
  EXPECT_EQ(seeds.size(), 10000u);
}

TEST(FleetSeeds, DependOnRootSeed) {
  EXPECT_NE(fleet_session_seed(1, 0), fleet_session_seed(2, 0));
  EXPECT_NE(fleet_session_seed(1, 5), fleet_session_seed(2, 5));
}

TEST(FleetSeeds, PureFunctionOfIndex) {
  // Same (root, index) -> same seed, independent of evaluation order.
  const std::uint64_t a = fleet_session_seed(99, 17);
  (void)fleet_session_seed(99, 3);
  EXPECT_EQ(fleet_session_seed(99, 17), a);
}

TEST(Fleet, DeterministicAcrossShardCounts) {
  const SessionFactory factory = make_ghm_fleet_factory();
  const FleetResult one = run_fleet(small_fleet(1), factory);
  const FleetResult two = run_fleet(small_fleet(2), factory);
  const FleetResult eight = run_fleet(small_fleet(8), factory);

  ASSERT_EQ(one.shards, 1u);
  ASSERT_EQ(two.shards, 2u);
  ASSERT_EQ(eight.shards, 8u);

  EXPECT_EQ(one.report.fingerprint(), two.report.fingerprint());
  EXPECT_EQ(one.report.fingerprint(), eight.report.fingerprint());

  // Spot-check the fields behind the fingerprint too.
  EXPECT_EQ(one.report.completed, eight.report.completed);
  EXPECT_EQ(one.report.link.steps, eight.report.link.steps);
  EXPECT_EQ(one.report.tr_bytes, eight.report.tr_bytes);
  EXPECT_EQ(one.report.steps_per_ok.values(),
            eight.report.steps_per_ok.values());
}

TEST(Fleet, DifferentRootSeedsDiffer) {
  const SessionFactory factory = make_ghm_fleet_factory();
  FleetConfig a = small_fleet(2);
  FleetConfig b = small_fleet(2);
  b.root_seed = a.root_seed + 1;
  EXPECT_NE(run_fleet(a, factory).report.fingerprint(),
            run_fleet(b, factory).report.fingerprint());
}

TEST(Fleet, MatchesSerialBaseline) {
  // One shard of the engine must equal running each session by hand.
  FleetConfig cfg = small_fleet(1);
  cfg.sessions = 4;
  const SessionFactory factory = make_ghm_fleet_factory();
  const FleetResult engine = run_fleet(cfg, factory);

  FleetReport byhand;
  for (std::uint64_t i = 0; i < cfg.sessions; ++i) {
    const SessionSpec spec{i, fleet_session_seed(cfg.root_seed, i)};
    auto link = factory(spec);
    byhand.add(run_workload(*link, cfg.workload,
                            spec.rng(kFleetWorkloadSalt)));
  }
  byhand.canonicalize();
  EXPECT_EQ(engine.report.fingerprint(), byhand.fingerprint());
}

TEST(Fleet, CleanUnderChaosFleet) {
  // eps = 2^-16 over 24*5 messages: safety violations should be absent.
  const FleetResult res =
      run_fleet(small_fleet(4), make_ghm_fleet_factory());
  EXPECT_EQ(res.report.violations.safety_total(), 0u);
  EXPECT_EQ(res.report.violations.axiom, 0u);
  EXPECT_EQ(res.report.offered, res.report.sessions * 5);
  EXPECT_EQ(res.report.completed, res.report.offered);  // no crashes in profile
}

TEST(Fleet, ZeroSessions) {
  FleetConfig cfg;
  cfg.sessions = 0;
  const FleetResult res = run_fleet(cfg, make_ghm_fleet_factory());
  EXPECT_EQ(res.report.sessions, 0u);
  EXPECT_EQ(res.shards, 1u);
  EXPECT_EQ(res.report.fingerprint(),
            FleetReport{}.fingerprint());
}

TEST(Fleet, MoreShardsThanSessionsClamps) {
  FleetConfig cfg = small_fleet(64);
  cfg.sessions = 3;
  const FleetResult res = run_fleet(cfg, make_ghm_fleet_factory());
  EXPECT_EQ(res.shards, 3u);
  EXPECT_EQ(res.report.sessions, 3u);
}

TEST(Fleet, BatchSizeAndJitterInvariant) {
  // The slab engine's batch size and budget jitter change only the
  // interleaving of sessions, never any session's step sequence — so the
  // canonicalized aggregate must not move. (The full grid lives in
  // fleet_slab_diff_test.cpp; this is the quick inner-loop check.)
  const SessionFactory factory = make_ghm_fleet_factory();
  FleetConfig cfg = small_fleet(3);
  const std::string want = run_fleet(cfg, factory).report.fingerprint();
  for (const std::uint64_t batch : {std::uint64_t{1}, std::uint64_t{7},
                                    std::uint64_t{1024}}) {
    cfg.batch_steps = batch;
    for (const bool jitter : {false, true}) {
      cfg.batch_jitter = jitter;
      EXPECT_EQ(run_fleet(cfg, factory).report.fingerprint(), want)
          << "batch=" << batch << " jitter=" << jitter;
    }
  }
}

TEST(Fleet, EnginesAgreeOnTheDefaultFleet) {
  const SessionFactory factory = make_ghm_fleet_factory();
  FleetConfig cfg = small_fleet(2);
  cfg.engine = FleetEngine::kSlab;
  const FleetResult slab = run_fleet(cfg, factory);
  cfg.engine = FleetEngine::kLegacy;
  const FleetResult legacy = run_fleet(cfg, factory);
  EXPECT_EQ(slab.report.fingerprint(), legacy.report.fingerprint());
  // Slab-only execution metadata: the arenas reserved real memory and
  // every scheduler visit was timed; the legacy oracle reports neither.
  EXPECT_GT(slab.slab_bytes_reserved, 0u);
  EXPECT_GT(slab.batch_latency_us.count(), 0u);
  EXPECT_EQ(legacy.slab_bytes_reserved, 0u);
}

TEST(FleetReportAlgebra, MergeIsOrderIndependentAfterCanonicalize) {
  RunReport r1;
  r1.offered = 3;
  r1.completed = 2;
  r1.steps_per_ok.add(10.0);
  r1.steps_per_ok.add(30.0);
  r1.link.steps = 100;
  r1.link.max_rm_state_bits = 64;
  r1.violations.replay = 1;

  RunReport r2;
  r2.offered = 1;
  r2.completed = 1;
  r2.steps_per_ok.add(20.0);
  r2.link.steps = 50;
  r2.link.max_rm_state_bits = 32;

  FleetReport ab;
  ab.add(r1);
  ab.add(r2);
  ab.canonicalize();

  FleetReport a;
  a.add(r1);
  FleetReport b;
  b.add(r2);
  b.merge(a);  // reversed order
  b.canonicalize();

  EXPECT_EQ(ab.fingerprint(), b.fingerprint());
  EXPECT_EQ(ab.sessions, 2u);
  EXPECT_EQ(ab.offered, 4u);
  EXPECT_EQ(ab.link.steps, 150u);
  EXPECT_EQ(ab.link.max_rm_state_bits, 64u);
  EXPECT_EQ(ab.violations.replay, 1u);
  const std::vector<double> want{10.0, 20.0, 30.0};
  EXPECT_EQ(ab.steps_per_ok.values(), want);
}

TEST(FleetReportAlgebra, FingerprintSensitiveToEveryCounter) {
  FleetReport a;
  FleetReport b;
  b.completed = 1;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  FleetReport c;
  c.violations.causality = 1;
  EXPECT_NE(a.fingerprint(), c.fingerprint());
  FleetReport d;
  d.steps_per_ok.add(1.0);
  EXPECT_NE(a.fingerprint(), d.fingerprint());
}

TEST(LinkStatsMerge, SumsCountersAndMaxesPeaks) {
  LinkStats a;
  a.steps = 10;
  a.oks = 2;
  a.retries = 5;
  a.max_tm_state_bits = 100;
  a.max_rm_state_bits = 10;
  LinkStats b;
  b.steps = 7;
  b.oks = 1;
  b.crashes_r = 3;
  b.max_tm_state_bits = 50;
  b.max_rm_state_bits = 200;
  a += b;
  EXPECT_EQ(a.steps, 17u);
  EXPECT_EQ(a.oks, 3u);
  EXPECT_EQ(a.retries, 5u);
  EXPECT_EQ(a.crashes_r, 3u);
  EXPECT_EQ(a.max_tm_state_bits, 100u);
  EXPECT_EQ(a.max_rm_state_bits, 200u);
}

TEST(ViolationCountsMerge, SumsEveryCondition) {
  ViolationCounts a;
  a.causality = 1;
  a.order = 2;
  ViolationCounts b;
  b.order = 3;
  b.duplication = 4;
  b.replay = 5;
  b.axiom = 6;
  a += b;
  EXPECT_EQ(a.causality, 1u);
  EXPECT_EQ(a.order, 5u);
  EXPECT_EQ(a.duplication, 4u);
  EXPECT_EQ(a.replay, 5u);
  EXPECT_EQ(a.axiom, 6u);
  EXPECT_EQ(a.safety_total(), 15u);
}

TEST(ParallelShards, CoversEveryShardExactlyOnce) {
  std::vector<int> hits(16, 0);
  parallel_shards(16, [&](unsigned s) { ++hits[s]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelShards, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_shards(4,
                      [](unsigned s) {
                        if (s == 2) throw std::runtime_error("boom");
                      }),
      std::runtime_error);
}

TEST(ParallelShards, ZeroShardsIsANoop) {
  parallel_shards(0, [](unsigned) { FAIL() << "must not be called"; });
}

TEST(ResolveThreads, ZeroMapsToHardware) {
  EXPECT_GE(resolve_threads(0), 1u);
  EXPECT_EQ(resolve_threads(5), 5u);
}

}  // namespace
}  // namespace s2d
