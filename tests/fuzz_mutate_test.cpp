// Mutation-operator property suite (harness/fuzzer.h): every mutation of
// a valid decision script must (1) stay within the depth cap and never
// be empty, (2) survive a serialize -> re-parse round trip unchanged,
// (3) replay cleanly under the script executor (unknown packet ids drop,
// they never crash the run), (4) be deterministic in the RNG state, and
// (5) keep the structural relation its operator promises (prefix,
// subsequence, splice shape). Shrunk violating mutants must preserve
// their violation class.
#include <algorithm>

#include <gtest/gtest.h>

#include "harness/fuzzer.h"
#include "harness/systems.h"
#include "link/script.h"
#include "util/rng.h"

namespace s2d {
namespace {

/// A pool of realistic parent scripts: recorded random schedules of
/// different lengths (violating and clean) against two systems.
std::vector<std::vector<Decision>> parent_pool() {
  std::vector<std::vector<Decision>> pool;
  FuzzerConfig cfg;
  cfg.depth = 40;
  for (const char* name : {"abp", "fixed_nonce"}) {
    const SeededSystem system = make_seeded_system(name);
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      FuzzRun run = fuzz_script(system(seed), seed, cfg);
      if (!run.script.empty()) pool.push_back(std::move(run.script));
    }
  }
  return pool;
}

/// True iff `needle` is a (not necessarily contiguous) subsequence of
/// `hay`.
bool is_subsequence(const std::vector<Decision>& needle,
                    const std::vector<Decision>& hay) {
  std::size_t i = 0;
  for (const Decision& d : hay) {
    if (i < needle.size() && needle[i] == d) ++i;
  }
  return i == needle.size();
}

constexpr std::uint32_t kDepthCap = 40;

class MutateTest : public ::testing::TestWithParam<MutationOp> {};

TEST_P(MutateTest, StaysBoundedAndNonEmpty) {
  const MutationOp op = GetParam();
  Rng rng(0x5eed);
  for (const auto& parent : parent_pool()) {
    for (int trial = 0; trial < 8; ++trial) {
      const auto mutant =
          mutate_script(parent, parent, op, rng, FuzzWeights{}, kDepthCap);
      EXPECT_FALSE(mutant.empty()) << mutation_op_name(op);
      EXPECT_LE(mutant.size(), kDepthCap) << mutation_op_name(op);
    }
  }
}

TEST_P(MutateTest, SerializesAndReParsesToItself) {
  const MutationOp op = GetParam();
  Rng rng(0x70a5);
  for (const auto& parent : parent_pool()) {
    const auto mutant =
        mutate_script(parent, parent, op, rng, FuzzWeights{}, kDepthCap);
    const ScriptParse reparsed = parse_script(render_script(mutant));
    ASSERT_TRUE(reparsed.ok)
        << mutation_op_name(op) << ": " << reparsed.error;
    EXPECT_EQ(reparsed.decisions, mutant) << mutation_op_name(op);
  }
}

TEST_P(MutateTest, ReplaysCleanlyOnEverySystem) {
  // Arbitrary mutants are legal scripts: deliveries of ids that were
  // never sent simply drop. The replay must execute (and terminate)
  // without any precondition on the mutant's shape.
  const MutationOp op = GetParam();
  Rng rng(2026);
  const SeededSystem system = make_seeded_system("ghm");
  for (const auto& parent : parent_pool()) {
    const auto mutant =
        mutate_script(parent, parent, op, rng, FuzzWeights{}, kDepthCap);
    const DataLink link =
        replay_script(system(3), mutant, ScriptWorkload{});
    EXPECT_LE(link.stats().steps, mutant.size()) << mutation_op_name(op);
  }
}

TEST_P(MutateTest, DeterministicInRngState) {
  const MutationOp op = GetParam();
  for (const auto& parent : parent_pool()) {
    Rng rng_a(0xabcd);
    Rng rng_b(0xabcd);
    const auto a =
        mutate_script(parent, parent, op, rng_a, FuzzWeights{}, kDepthCap);
    const auto b =
        mutate_script(parent, parent, op, rng_b, FuzzWeights{}, kDepthCap);
    EXPECT_EQ(a, b) << mutation_op_name(op);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, MutateTest,
    ::testing::Values(MutationOp::kReseed, MutationOp::kTruncate,
                      MutationOp::kDeleteSpan, MutationOp::kFlip,
                      MutationOp::kInsert, MutationOp::kSplice),
    [](const ::testing::TestParamInfo<MutationOp>& param_info) {
      std::string name = mutation_op_name(param_info.param);
      name.erase(std::remove(name.begin(), name.end(), '_'), name.end());
      return name;
    });

TEST(Mutate, ReseedLeavesTheScriptUntouched) {
  Rng rng(1);
  for (const auto& parent : parent_pool()) {
    const auto mutant = mutate_script(parent, parent, MutationOp::kReseed,
                                      rng, FuzzWeights{}, kDepthCap);
    EXPECT_EQ(mutant, parent);
  }
}

TEST(Mutate, TruncateKeepsAPrefix) {
  Rng rng(2);
  for (const auto& parent : parent_pool()) {
    const auto mutant = mutate_script(parent, parent, MutationOp::kTruncate,
                                      rng, FuzzWeights{}, kDepthCap);
    ASSERT_LE(mutant.size(), parent.size());
    EXPECT_TRUE(std::equal(mutant.begin(), mutant.end(), parent.begin()));
  }
}

TEST(Mutate, DeleteSpanKeepsASubsequence) {
  Rng rng(3);
  for (const auto& parent : parent_pool()) {
    const auto mutant =
        mutate_script(parent, parent, MutationOp::kDeleteSpan, rng,
                      FuzzWeights{}, kDepthCap);
    EXPECT_LE(mutant.size(), std::max<std::size_t>(parent.size(), 1));
    if (mutant.size() <= parent.size()) {
      EXPECT_TRUE(is_subsequence(mutant, parent));
    }
  }
}

TEST(Mutate, FlipChangesAtMostOnePosition) {
  Rng rng(4);
  for (const auto& parent : parent_pool()) {
    const auto capped = [&] {
      auto p = parent;
      if (p.size() > kDepthCap) p.resize(kDepthCap);
      return p;
    }();
    const auto mutant = mutate_script(capped, capped, MutationOp::kFlip,
                                      rng, FuzzWeights{}, kDepthCap);
    ASSERT_EQ(mutant.size(), capped.size());
    std::size_t diffs = 0;
    for (std::size_t i = 0; i < mutant.size(); ++i) {
      if (!(mutant[i] == capped[i])) ++diffs;
    }
    EXPECT_LE(diffs, 1u);
  }
}

TEST(Mutate, InsertKeepsTheParentAsASubsequence) {
  Rng rng(5);
  for (const auto& parent : parent_pool()) {
    auto small = parent;
    if (small.size() > 20) small.resize(20);  // leave room under the cap
    const auto mutant = mutate_script(small, small, MutationOp::kInsert,
                                      rng, FuzzWeights{}, kDepthCap);
    EXPECT_GE(mutant.size(), small.size());
    EXPECT_TRUE(is_subsequence(small, mutant));
  }
}

TEST(Mutate, SpliceJoinsAPrefixAndASuffix) {
  Rng rng(6);
  const auto pool = parent_pool();
  ASSERT_GE(pool.size(), 2u);
  const auto& a = pool[0];
  const auto& b = pool[1];
  const auto mutant = mutate_script(a, b, MutationOp::kSplice, rng,
                                    FuzzWeights{}, 1000);
  // Some prefix of the mutant matches a's prefix; the rest is a suffix
  // of b.
  std::size_t cut = 0;
  while (cut < mutant.size() && cut < a.size() && mutant[cut] == a[cut]) {
    ++cut;
  }
  const std::size_t tail = mutant.size() - cut;
  ASSERT_LE(tail, b.size());
  EXPECT_TRUE(std::equal(mutant.begin() + static_cast<std::ptrdiff_t>(cut),
                         mutant.end(), b.end() - static_cast<std::ptrdiff_t>(tail)));
}

TEST(Mutate, ViolatingMutantsShrinkWithoutChangingClass) {
  // Close the loop with the shrinker: when a mutant violates, ddmin must
  // preserve its violation class — the same guarantee fresh
  // counterexamples get.
  const SeededSystem system = make_seeded_system("fixed_nonce");
  FuzzerConfig cfg;
  cfg.depth = 60;
  Rng rng(0xfeed);
  int shrunk_cases = 0;
  for (std::uint64_t seed = 1; seed <= 20 && shrunk_cases < 3; ++seed) {
    FuzzRun parent = fuzz_script(system(seed), seed, cfg);
    if (parent.script.empty()) continue;
    for (int trial = 0; trial < 4; ++trial) {
      const auto op =
          static_cast<MutationOp>(rng.next_below(kMutationOpCount));
      const auto mutant = mutate_script(parent.script, parent.script, op,
                                        rng, FuzzWeights{}, cfg.depth);
      const FuzzRun run =
          run_candidate(system(seed), mutant, cfg.workload);
      if (!run.violating()) continue;
      ++shrunk_cases;
      const std::uint32_t cls = violation_class(run.violations);
      const ShrinkResult shrunk =
          shrink_script(system(seed), run.script, cfg.workload);
      EXPECT_LE(shrunk.script.size(), run.script.size());
      EXPECT_EQ(violation_class(shrunk.violations) & cls, cls)
          << mutation_op_name(op) << " seed " << seed;
      EXPECT_FALSE(shrunk.tail.empty());
    }
  }
  EXPECT_GE(shrunk_cases, 1);
}

TEST(Mutate, RunCandidateStopsAtTheFirstViolation) {
  // run_candidate mirrors fuzz_script's stop-on-violation semantics: the
  // returned script is the executed prefix, and replaying it reproduces
  // the recorded counts.
  const SeededSystem system = make_seeded_system("abp");
  FuzzerConfig cfg;
  cfg.depth = 60;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const FuzzRun source = fuzz_script(system(seed), seed, cfg);
    if (!source.violating()) continue;
    const FuzzRun rerun =
        run_candidate(system(seed), source.script, cfg.workload);
    EXPECT_EQ(rerun.script, source.script);
    EXPECT_EQ(rerun.steps, source.steps);
    EXPECT_EQ(violation_class(rerun.violations),
              violation_class(source.violations));
    return;
  }
  GTEST_FAIL() << "no violating abp script in the probe budget";
}

}  // namespace
}  // namespace s2d
