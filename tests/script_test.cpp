// Decision-script serialization (link/script.h): corpus files are only
// trustworthy if parse inverts render exactly and malformed input is
// rejected with a usable location, not silently skipped.
#include "link/script.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace s2d {
namespace {

std::vector<Decision> sample_script() {
  return {Decision::idle(),          Decision::deliver_tr(3),
          Decision::deliver_rt(0),   Decision::crash_t(),
          Decision::crash_r(),       Decision::retry(),
          Decision::tx_timer(),      Decision::mutate_tr(7),
          Decision::mutate_rt(12),   Decision::forge_tr(5),
          Decision::forge_rt(9)};
}

TEST(Script, RenderDecisionSpellsEveryKind) {
  EXPECT_EQ(render_decision(Decision::idle()), "idle");
  EXPECT_EQ(render_decision(Decision::deliver_tr(3)), "deliver_tr 3");
  EXPECT_EQ(render_decision(Decision::deliver_rt(0)), "deliver_rt 0");
  EXPECT_EQ(render_decision(Decision::crash_t()), "crash_t");
  EXPECT_EQ(render_decision(Decision::crash_r()), "crash_r");
  EXPECT_EQ(render_decision(Decision::retry()), "retry");
  EXPECT_EQ(render_decision(Decision::tx_timer()), "tx_timer");
  EXPECT_EQ(render_decision(Decision::mutate_rt(12)), "mutate_rt 12");
  EXPECT_EQ(render_decision(Decision::forge_tr(5)), "forge_tr 5");
}

TEST(Script, RoundTripAllKinds) {
  const auto script = sample_script();
  const ScriptParse parsed = parse_script(render_script(script));
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.decisions, script);
}

TEST(Script, RoundTripRandomizedScripts) {
  Rng rng(0xdecade);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Decision> script;
    const std::uint64_t len = rng.next_below(40);
    for (std::uint64_t i = 0; i < len; ++i) {
      switch (rng.next_below(7)) {
        case 0: script.push_back(Decision::idle()); break;
        case 1:
          script.push_back(Decision::deliver_tr(rng.next_below(100)));
          break;
        case 2:
          script.push_back(Decision::deliver_rt(rng.next_below(100)));
          break;
        case 3: script.push_back(Decision::crash_t()); break;
        case 4: script.push_back(Decision::crash_r()); break;
        case 5: script.push_back(Decision::retry()); break;
        default: script.push_back(Decision::tx_timer()); break;
      }
    }
    const ScriptParse parsed = parse_script(render_script(script));
    ASSERT_TRUE(parsed.ok) << parsed.error;
    EXPECT_EQ(parsed.decisions, script) << "trial " << trial;
  }
}

TEST(Script, CommentsAndBlankLinesIgnored) {
  const ScriptParse parsed = parse_script(
      "# witness for the abp crash bug\n"
      "\n"
      "  tx_timer   # fire the timer\n"
      "deliver_tr 1\n");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  ASSERT_EQ(parsed.decisions.size(), 2u);
  EXPECT_EQ(parsed.decisions[0], Decision::tx_timer());
  EXPECT_EQ(parsed.decisions[1], Decision::deliver_tr(1));
}

TEST(Script, UnknownMnemonicRejectedWithLocation) {
  const ScriptParse parsed = parse_script("idle\n  explode\n");
  EXPECT_FALSE(parsed.ok);
  EXPECT_EQ(parsed.line, 2u);
  EXPECT_EQ(parsed.column, 3u);  // after the two-space indent
  EXPECT_NE(parsed.error.find("explode"), std::string::npos);
}

TEST(Script, MissingArgumentRejected) {
  const ScriptParse parsed = parse_script("deliver_tr\n");
  EXPECT_FALSE(parsed.ok);
  EXPECT_EQ(parsed.line, 1u);
}

TEST(Script, UnexpectedArgumentRejected) {
  const ScriptParse parsed = parse_script("crash_t 3\n");
  EXPECT_FALSE(parsed.ok);
  EXPECT_EQ(parsed.line, 1u);
}

TEST(Script, NonNumericArgumentRejected) {
  const ScriptParse parsed = parse_script("deliver_tr abc\n");
  EXPECT_FALSE(parsed.ok);
  EXPECT_EQ(parsed.line, 1u);
  EXPECT_EQ(parsed.column, 12u);  // the argument token, 1-based
}

TEST(Script, BareScriptRejectsDirectives) {
  const ScriptParse parsed = parse_script("@system ghm\nidle\n");
  EXPECT_FALSE(parsed.ok);
  EXPECT_EQ(parsed.line, 1u);
}

TEST(Script, DocRoundTrip) {
  ScriptDoc doc;
  doc.system = "fixed_nonce";
  doc.seed = 123456789;
  doc.messages = 4;
  doc.payload_bytes = 3;
  doc.expect = "replay";
  doc.decisions = sample_script();
  const ScriptDocParse parsed = parse_script_doc(render_script_doc(doc));
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.doc, doc);
}

TEST(Script, DocDefaultsWhenDirectivesOmitted) {
  const ScriptDocParse parsed = parse_script_doc("idle\n");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.doc.system, "ghm");
  EXPECT_EQ(parsed.doc.seed, 1u);
  EXPECT_EQ(parsed.doc.messages, 2u);
  EXPECT_TRUE(parsed.doc.expect.empty());
}

TEST(Script, DocRejectsUnknownDirective) {
  const ScriptDocParse parsed = parse_script_doc("@flavor vanilla\n");
  EXPECT_FALSE(parsed.ok);
  EXPECT_EQ(parsed.line, 1u);
}

TEST(Script, DocRejectsBadExpectation) {
  const ScriptDocParse parsed = parse_script_doc("@expect sideways\n");
  EXPECT_FALSE(parsed.ok);
  EXPECT_EQ(parsed.line, 1u);
}

TEST(Script, ValidExpectationWords) {
  EXPECT_TRUE(valid_expectation("clean"));
  EXPECT_TRUE(valid_expectation("violating"));
  EXPECT_TRUE(valid_expectation("causality"));
  EXPECT_TRUE(valid_expectation("order"));
  EXPECT_TRUE(valid_expectation("duplication"));
  EXPECT_TRUE(valid_expectation("replay"));
  EXPECT_FALSE(valid_expectation("axiom"));
  EXPECT_FALSE(valid_expectation(""));
}

// --- Fabric grammar -----------------------------------------------------

TEST(FabricScript, RenderDecisionForms) {
  // Link 0 renders bare (single-link scripts round-trip unchanged);
  // other links carry the `e<k>` prefix; faults have their own verbs.
  EXPECT_EQ(render_fabric_decision(
                FabricDecision::link(0, Decision::retry())),
            "retry");
  EXPECT_EQ(render_fabric_decision(
                FabricDecision::link(3, Decision::deliver_tr(7))),
            "e3 deliver_tr 7");
  EXPECT_EQ(render_fabric_decision(FabricDecision::relay_crash(2)),
            "relay_crash 2");
  EXPECT_EQ(render_fabric_decision(FabricDecision::edge_down(1)),
            "edge_down 1");
  EXPECT_EQ(render_fabric_decision(FabricDecision::edge_up(1)),
            "edge_up 1");
}

TEST(FabricScript, DocRoundTrip) {
  FabricScriptDoc doc;
  doc.topology = "grid:3x3";
  doc.system = "abp";
  doc.seed = 77;
  doc.messages = 5;
  doc.payload_bytes = 3;
  doc.expect = "duplication";
  doc.decisions = {
      FabricDecision::link(0, Decision::retry()),
      FabricDecision::link(5, Decision::deliver_tr(2)),
      FabricDecision::relay_crash(4),
      FabricDecision::edge_down(3),
      FabricDecision::link(11, Decision::crash_r()),
      FabricDecision::edge_up(3),
  };
  const FabricScriptDocParse parsed =
      parse_fabric_script_doc(render_fabric_script_doc(doc));
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.doc, doc);
  EXPECT_FALSE(parsed.doc.single_link());
}

TEST(FabricScript, PlainDocParsesAsSingleLinkFabricDoc) {
  // Every plain document is a fabric document with the default line:2
  // topology — the replay tool's dispatch contract.
  const char* text =
      "@system ghm\n@seed 9\n@messages 3\nretry\ndeliver_tr 1\n";
  const FabricScriptDocParse parsed = parse_fabric_script_doc(text);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.doc.topology, "line:2");
  EXPECT_TRUE(parsed.doc.single_link());
  const std::vector<Decision> link0 = parsed.doc.link0_decisions();
  ASSERT_EQ(link0.size(), 2u);
  EXPECT_EQ(link0[0], Decision::retry());
  EXPECT_EQ(link0[1], Decision::deliver_tr(1));
}

TEST(FabricScript, PlainParserRejectsTopologyDirective) {
  // parse_script_doc stays the single-link grammar: a fabric document
  // must be dispatched to parse_fabric_script_doc, never silently
  // misread as a single-link run.
  const ScriptDocParse plain = parse_script_doc("@topology line:3\n");
  EXPECT_FALSE(plain.ok);
  EXPECT_EQ(plain.line, 1u);
}

TEST(FabricScript, DiagnosticsCarryLocation) {
  const FabricScriptDocParse bad_link =
      parse_fabric_script_doc("retry\nexx deliver_tr 1\n");
  EXPECT_FALSE(bad_link.ok);
  EXPECT_EQ(bad_link.line, 2u);

  const FabricScriptDocParse bad_fault =
      parse_fabric_script_doc("relay_crash\n");
  EXPECT_FALSE(bad_fault.ok);
  EXPECT_EQ(bad_fault.line, 1u);

  const FabricScriptDocParse bare_address =
      parse_fabric_script_doc("retry\ne3\n");
  EXPECT_FALSE(bare_address.ok);
  EXPECT_EQ(bare_address.line, 2u);
}

}  // namespace
}  // namespace s2d
