#!/usr/bin/env bash
# Two-process wire smoke: the TM binds an ephemeral loopback port first
# (learn-peer mode — GHM's transmitter is purely reactive, so it is the
# natural server: it never needs to speak until a RETRY arrives, and that
# first datagram teaches it the RM's address). The RM is then aimed at
# the TM's bound port and its RETRY timer elicits everything. Both run
# under a seeded drop+dup+reorder impairment profile and must finish
# checker-clean with all messages completed inside the time limit.
# Event-bus timelines from both ends are captured as JSONL next to the
# logs.
#
# Flake posture: ports are always ephemeral (127.0.0.1:0, never a fixed
# number that another job could hold), the TM's bound-address report is
# polled against a wall-clock deadline rather than a fixed iteration
# count (loaded CI machines can stall a fresh process for seconds), both
# nodes run under a watchdog `timeout` so a wedged process fails this
# test instead of eating the whole ctest budget, and every failure path
# dumps both nodes' JSONL event timelines — the flight recorders — so a
# CI-only failure is diagnosable from the log alone.
#
#   wire_smoke.sh <wire_node-binary> <work-dir> [messages]
set -u

WIRE_NODE=${1:?usage: wire_smoke.sh <wire_node> <workdir> [messages]}
WORKDIR=${2:?usage: wire_smoke.sh <wire_node> <workdir> [messages]}
MESSAGES=${3:-100}

# Seconds each node may run before the watchdog kills it; comfortably
# above a healthy run (sub-second on an idle machine) and comfortably
# below the ctest TIMEOUT of 120 so the timelines still get printed.
WATCHDOG=90
BOUND_DEADLINE=30

mkdir -p "$WORKDIR"
RM_OUT="$WORKDIR/rm.out"
TM_OUT="$WORKDIR/tm.out"
: > "$TM_OUT"

dump_timelines() {
  for side in tm rm; do
    echo "--- ${side} timeline (last 50 events) ---" >&2
    if [ -s "$WORKDIR/${side}_timeline.jsonl" ]; then
      tail -n 50 "$WORKDIR/${side}_timeline.jsonl" >&2
    else
      echo "(no ${side} timeline captured)" >&2
    fi
  done
}

IMPAIR=(--drop 0.1 --dup 0.05 --hold 0.1 --max-hold-ticks 4)

timeout "$WATCHDOG" \
  "$WIRE_NODE" --role tm --bind 127.0.0.1:0 --learn-peer --print-bound \
  --messages "$MESSAGES" "${IMPAIR[@]}" --impair-seed 1 \
  --trace-jsonl "$WORKDIR/tm_timeline.jsonl" > "$TM_OUT" 2>&1 &
TM_PID=$!

# Wait for the TM to report its bound address (deadline, not iterations).
BOUND=""
SECONDS=0
while [ "$SECONDS" -lt "$BOUND_DEADLINE" ]; do
  BOUND=$(sed -n 's/^bound=//p' "$TM_OUT" | head -n1)
  [ -n "$BOUND" ] && break
  if ! kill -0 "$TM_PID" 2>/dev/null; then
    break  # TM already exited; fall through to the error report
  fi
  sleep 0.1
done
if [ -z "$BOUND" ]; then
  echo "wire_smoke: TM never reported its bound address within ${BOUND_DEADLINE}s" >&2
  cat "$TM_OUT" >&2
  dump_timelines
  kill "$TM_PID" 2>/dev/null
  wait "$TM_PID" 2>/dev/null
  exit 1
fi

timeout "$WATCHDOG" \
  "$WIRE_NODE" --role rm --bind 127.0.0.1:0 --peer "$BOUND" \
  --messages "$MESSAGES" "${IMPAIR[@]}" --impair-seed 2 \
  --trace-jsonl "$WORKDIR/rm_timeline.jsonl" > "$RM_OUT" 2>&1
RM_STATUS=$?

wait "$TM_PID"
TM_STATUS=$?

echo "--- tm ---"; cat "$TM_OUT"
echo "--- rm ---"; cat "$RM_OUT"

FAIL=0
if [ "$TM_STATUS" -ne 0 ]; then
  if [ "$TM_STATUS" -eq 124 ]; then
    echo "wire_smoke: tm hit the ${WATCHDOG}s watchdog" >&2
  else
    echo "wire_smoke: tm exited $TM_STATUS" >&2
  fi
  FAIL=1
fi
if [ "$RM_STATUS" -ne 0 ]; then
  if [ "$RM_STATUS" -eq 124 ]; then
    echo "wire_smoke: rm hit the ${WATCHDOG}s watchdog" >&2
  else
    echo "wire_smoke: rm exited $RM_STATUS" >&2
  fi
  FAIL=1
fi
grep -q "result=ok role=tm progress=$MESSAGES/$MESSAGES" "$TM_OUT" || {
  echo "wire_smoke: tm did not complete $MESSAGES messages" >&2; FAIL=1; }
grep -q "result=ok role=rm progress=$MESSAGES/$MESSAGES" "$RM_OUT" || {
  echo "wire_smoke: rm did not deliver $MESSAGES messages" >&2; FAIL=1; }
for side in tm rm; do
  if ! [ -s "$WORKDIR/${side}_timeline.jsonl" ]; then
    echo "wire_smoke: missing $side timeline capture" >&2; FAIL=1
  fi
done
if [ "$FAIL" -ne 0 ]; then
  dump_timelines
fi
exit "$FAIL"
