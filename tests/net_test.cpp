// src/net coverage: impairment-shim determinism, the epoll loop, UDP
// loopback round-trips, the WireChannel, and a full two-station GHM run
// over real sockets (both sessions on one in-process loop).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "harness/systems.h"
#include "net/impair.h"
#include "net/loop.h"
#include "net/session.h"
#include "net/udp.h"
#include "net/wire_channel.h"

namespace s2d {
namespace {

Bytes make_datagram(std::uint8_t tag, std::size_t len) {
  Bytes b(len);
  for (std::size_t i = 0; i < len; ++i) {
    b[i] = static_cast<std::byte>(tag + i);
  }
  return b;
}

/// Runs `count` sequential datagrams through an Impairer with `cfg`,
/// ticking every `tick_every` offers, and returns the emitted sequence.
std::vector<Bytes> impair_sequence(const ImpairConfig& cfg,
                                   std::size_t count,
                                   std::size_t tick_every) {
  Impairer imp(cfg);
  std::vector<Bytes> emitted;
  imp.set_emit([&](std::span<const std::byte> d) {
    emitted.emplace_back(d.begin(), d.end());
  });
  for (std::size_t i = 0; i < count; ++i) {
    const Bytes d = make_datagram(static_cast<std::uint8_t>(i), 8 + i % 5);
    imp.offer(d);
    if (tick_every != 0 && i % tick_every == 0) imp.tick();
  }
  imp.flush();
  return emitted;
}

TEST(Impairer, TransparentConfigPassesEverythingInOrder) {
  const auto emitted = impair_sequence(ImpairConfig{}, 50, 3);
  ASSERT_EQ(emitted.size(), 50u);
  for (std::size_t i = 0; i < emitted.size(); ++i) {
    EXPECT_EQ(emitted[i], make_datagram(static_cast<std::uint8_t>(i),
                                        8 + i % 5));
  }
}

TEST(Impairer, SameSeedSameByteIdenticalOrder) {
  // The property CI leans on: the emitted sequence is a pure function of
  // (config, seed, offered sequence, tick schedule).
  const ImpairConfig cfg{.drop = 0.2, .dup = 0.2, .hold = 0.3, .seed = 77};
  const auto a = impair_sequence(cfg, 200, 4);
  const auto b = impair_sequence(cfg, 200, 4);
  EXPECT_EQ(a, b);

  ImpairConfig other = cfg;
  other.seed = 78;
  EXPECT_NE(impair_sequence(other, 200, 4), a);
}

TEST(Impairer, DropAllEmitsNothing) {
  const ImpairConfig cfg{.drop = 1.0, .seed = 5};
  Impairer imp(cfg);
  std::size_t emitted = 0;
  imp.set_emit([&](std::span<const std::byte>) { ++emitted; });
  const Bytes d = make_datagram(1, 16);
  for (int i = 0; i < 20; ++i) imp.offer(d);
  imp.flush();
  EXPECT_EQ(emitted, 0u);
  EXPECT_EQ(imp.stats().dropped, 20u);
  EXPECT_EQ(imp.stats().emitted, 0u);
}

TEST(Impairer, DupAllDoublesEverything) {
  const ImpairConfig cfg{.dup = 1.0, .seed = 6};
  Impairer imp(cfg);
  std::size_t emitted = 0;
  imp.set_emit([&](std::span<const std::byte>) { ++emitted; });
  const Bytes d = make_datagram(2, 16);
  for (int i = 0; i < 10; ++i) imp.offer(d);
  imp.flush();
  EXPECT_EQ(emitted, 20u);
  EXPECT_EQ(imp.stats().duplicated, 10u);
}

TEST(Impairer, HeldCopiesReleaseInTickThenSeqOrder) {
  const ImpairConfig cfg{.hold = 1.0, .max_hold_ticks = 3, .seed = 9};
  Impairer imp(cfg);
  std::vector<Bytes> emitted;
  imp.set_emit([&](std::span<const std::byte> d) {
    emitted.emplace_back(d.begin(), d.end());
  });
  std::vector<Bytes> offered;
  for (std::size_t i = 0; i < 30; ++i) {
    offered.push_back(make_datagram(static_cast<std::uint8_t>(i), 8));
    imp.offer(offered.back());
  }
  EXPECT_EQ(imp.held_count(), 30u);
  for (int t = 0; t < 3; ++t) imp.tick();
  EXPECT_EQ(imp.held_count(), 0u);
  ASSERT_EQ(emitted.size(), 30u);
  // Everything comes out exactly once (a permutation, not a mutation)...
  auto sorted_in = offered, sorted_out = emitted;
  std::sort(sorted_in.begin(), sorted_in.end());
  std::sort(sorted_out.begin(), sorted_out.end());
  EXPECT_EQ(sorted_in, sorted_out);
  // ...and with max_hold_ticks > 1 some pair actually swapped.
  EXPECT_NE(emitted, offered);
}

TEST(Impairer, FlushReleasesEverythingHeld) {
  const ImpairConfig cfg{.hold = 1.0, .max_hold_ticks = 64, .seed = 10};
  Impairer imp(cfg);
  std::size_t emitted = 0;
  imp.set_emit([&](std::span<const std::byte>) { ++emitted; });
  const Bytes d = make_datagram(3, 8);
  for (int i = 0; i < 12; ++i) imp.offer(d);
  EXPECT_EQ(emitted, 0u);
  imp.flush();
  EXPECT_EQ(emitted, 12u);
  EXPECT_EQ(imp.held_count(), 0u);
  EXPECT_EQ(imp.stats().released, 12u);
}

TEST(EventLoop, TimersFireInDeadlineOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.add_timer(std::chrono::milliseconds(20), [&] { order.push_back(2); });
  loop.add_timer(std::chrono::milliseconds(5), [&] { order.push_back(1); });
  loop.add_timer(std::chrono::milliseconds(40), [&] {
    order.push_back(3);
    loop.stop();
  });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventLoop, CancelledTimerNeverFires) {
  EventLoop loop;
  bool fired = false;
  const auto id = loop.add_timer(std::chrono::milliseconds(5),
                                 [&] { fired = true; });
  loop.cancel_timer(id);
  loop.add_timer(std::chrono::milliseconds(20), [&] { loop.stop(); });
  loop.run();
  EXPECT_FALSE(fired);
}

TEST(Udp, LoopbackRoundTrip) {
  UdpSocket a(UdpAddress::loopback(0));
  UdpSocket b(UdpAddress::loopback(0));
  ASSERT_NE(a.local_address().port, 0);
  ASSERT_NE(b.local_address().port, 0);

  const Bytes msg = make_datagram(7, 32);
  ASSERT_TRUE(a.send_to(msg, b.local_address()));

  // Non-blocking receive: loopback delivery is fast but not instantaneous.
  Bytes buf(128);
  std::optional<RecvResult> r;
  for (int spin = 0; spin < 10000 && !r; ++spin) r = b.recv_from(buf);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->length, msg.size());
  EXPECT_FALSE(r->truncated());
  EXPECT_EQ(r->from, a.local_address());
  EXPECT_EQ(Bytes(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(
                                   r->length)),
            msg);
}

TEST(Udp, TruncationReportsWireLength) {
  UdpSocket a(UdpAddress::loopback(0));
  UdpSocket b(UdpAddress::loopback(0));
  const Bytes big = make_datagram(1, 100);
  ASSERT_TRUE(a.send_to(big, b.local_address()));
  Bytes small_buf(10);
  std::optional<RecvResult> r;
  for (int spin = 0; spin < 10000 && !r; ++spin) r = b.recv_from(small_buf);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->truncated());
  EXPECT_EQ(r->length, 10u);
  EXPECT_EQ(r->wire_length, 100u);
}

TEST(Udp, ParseAndRender) {
  const auto addr = UdpAddress::parse("127.0.0.1:7001");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->ip, 0x7f000001u);
  EXPECT_EQ(addr->port, 7001);
  EXPECT_EQ(addr->to_string(), "127.0.0.1:7001");
  EXPECT_FALSE(UdpAddress::parse("127.0.0.1").has_value());
  EXPECT_FALSE(UdpAddress::parse("127.0.0.1:99999").has_value());
  EXPECT_FALSE(UdpAddress::parse("not an address").has_value());
}

TEST(WireChannel, LoopbackRoundTripThroughTheLoop) {
  WireChannelConfig ca;
  ca.bind = UdpAddress::loopback(0);
  WireChannelConfig cb = ca;
  WireChannel a(ca, nullptr);
  WireChannel b(cb, nullptr);
  a.set_peer(b.local_address());
  b.set_peer(a.local_address());

  EventLoop loop;
  std::vector<Bytes> a_got, b_got;
  a.attach(loop, [&](std::span<const std::byte> d) {
    a_got.emplace_back(d.begin(), d.end());
    // Stop only once the echoes made it all the way back — stopping from
    // b's handler would race a's not-yet-serviced readable event.
    if (a_got.size() == 5) loop.stop();
  });
  b.attach(loop, [&](std::span<const std::byte> d) {
    b_got.emplace_back(d.begin(), d.end());
    b.send(d);  // echo
  });
  for (std::uint8_t i = 0; i < 5; ++i) a.send(make_datagram(i, 16 + i));
  loop.add_timer(std::chrono::milliseconds(2000), [&] { loop.stop(); });
  loop.run();

  ASSERT_EQ(b_got.size(), 5u);
  ASSERT_EQ(a_got.size(), 5u);  // echoes
  for (std::uint8_t i = 0; i < 5; ++i) {
    EXPECT_EQ(b_got[i], make_datagram(i, 16 + i));
    EXPECT_EQ(a_got[i], make_datagram(i, 16 + i));
  }
  EXPECT_EQ(a.tx_datagrams(), 5u);
  EXPECT_EQ(a.rx_datagrams(), 5u);
  EXPECT_EQ(b.truncated(), 0u);
}

TEST(WirePayload, DeterministicAndIdAddressable) {
  // Both processes must agree on message k's payload without a
  // back-channel — same (seed, id, bytes) in, same bytes out.
  EXPECT_EQ(wire_payload(1, 1, 16), wire_payload(1, 1, 16));
  EXPECT_NE(wire_payload(1, 1, 16), wire_payload(1, 2, 16));
  EXPECT_NE(wire_payload(1, 1, 16), wire_payload(2, 1, 16));
  EXPECT_EQ(wire_payload(1, 9, 8).size(), 8u);
}

/// Runs a complete two-station wire session in-process: TM and RM each
/// own a real UDP socket on loopback, both driven by one EventLoop, with
/// seeded impairment on both send paths.
void run_wire_pair(const ImpairConfig& impair, std::uint64_t messages) {
  ModulePair tm_pair = make_module_pair("ghm", 21);
  ModulePair rm_pair = make_module_pair("ghm", 21);
  ASSERT_TRUE(tm_pair.tm != nullptr);

  WireSessionConfig cfg;
  cfg.messages = messages;
  cfg.payload_bytes = 8;
  cfg.retry_interval = std::chrono::milliseconds(2);
  cfg.tick_interval = std::chrono::milliseconds(1);
  cfg.linger = std::chrono::milliseconds(300);
  cfg.time_limit = std::chrono::milliseconds(20000);

  WireChannelConfig tm_net, rm_net;
  tm_net.bind = UdpAddress::loopback(0);
  rm_net.bind = UdpAddress::loopback(0);
  tm_net.impair = impair;
  rm_net.impair = impair;
  rm_net.impair.seed = impair.seed + 1;  // independent decision streams

  TmWireSession tm(std::move(tm_pair.tm), tm_net, cfg);
  RmWireSession rm(std::move(rm_pair.rm), rm_net, cfg);
  tm.channel().set_peer(rm.channel().local_address());
  rm.channel().set_peer(tm.channel().local_address());

  EventLoop loop;
  const auto maybe_stop = [&] {
    if (tm.done() && rm.done()) loop.stop();
  };
  tm.set_on_done(maybe_stop);
  rm.set_on_done(maybe_stop);
  tm.start(loop);
  rm.start(loop);
  loop.run();

  EXPECT_TRUE(tm.succeeded()) << "tm timed_out=" << tm.timed_out()
                              << " completed=" << tm.completed();
  EXPECT_TRUE(rm.succeeded()) << "rm timed_out=" << rm.timed_out()
                              << " delivered=" << rm.distinct_delivered();
  EXPECT_EQ(tm.completed(), messages);
  EXPECT_EQ(rm.distinct_delivered(), messages);
  EXPECT_EQ(tm.violations().safety_total(), 0u);
  EXPECT_EQ(rm.violations().safety_total(), 0u);
}

TEST(WireSession, GhmCleanWireCompletesAllMessages) {
  run_wire_pair(ImpairConfig{}, 25);
}

TEST(WireSession, GhmSurvivesDropDupReorder) {
  // The acceptance-criteria profile in miniature: seeded drop + dup +
  // hold/reorder on both directions, checker-clean completion required.
  run_wire_pair(
      ImpairConfig{.drop = 0.1, .dup = 0.05, .hold = 0.1, .seed = 42}, 25);
}

TEST(WireSession, WireEventsLandInCounters) {
  ModulePair pair = make_module_pair("ghm", 3);
  ModulePair pair2 = make_module_pair("ghm", 3);
  WireSessionConfig cfg;
  cfg.messages = 5;
  cfg.payload_bytes = 4;
  cfg.retry_interval = std::chrono::milliseconds(2);
  cfg.tick_interval = std::chrono::milliseconds(1);
  cfg.linger = std::chrono::milliseconds(200);
  cfg.time_limit = std::chrono::milliseconds(10000);

  WireChannelConfig tm_net, rm_net;
  tm_net.bind = UdpAddress::loopback(0);
  rm_net.bind = UdpAddress::loopback(0);
  tm_net.impair = ImpairConfig{.drop = 0.05, .dup = 0.05, .seed = 4};

  TmWireSession tm(std::move(pair.tm), tm_net, cfg);
  RmWireSession rm(std::move(pair2.rm), rm_net, cfg);
  tm.channel().set_peer(rm.channel().local_address());
  rm.channel().set_peer(tm.channel().local_address());

  EventLoop loop;
  const auto maybe_stop = [&] {
    if (tm.done() && rm.done()) loop.stop();
  };
  tm.set_on_done(maybe_stop);
  rm.set_on_done(maybe_stop);
  tm.start(loop);
  rm.start(loop);
  loop.run();

  ASSERT_TRUE(tm.succeeded());
  // The obs pipeline saw the wire: datagram counters in the CounterSink
  // agree with the channel's own counts.
  const WireCounters& wc = tm.counters().wire();
  EXPECT_EQ(wc.tx_datagrams, tm.channel().tx_datagrams());
  EXPECT_EQ(wc.rx_datagrams, tm.channel().rx_datagrams());
  EXPECT_GT(wc.tx_datagrams, 0u);
  EXPECT_GT(wc.timer_fires, 0u);
  const ImpairStats& is = tm.channel().impair_stats();
  EXPECT_EQ(wc.impair_dropped, is.dropped);
  EXPECT_EQ(wc.impair_duplicated, is.duplicated);
}

}  // namespace
}  // namespace s2d
