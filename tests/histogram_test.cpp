#include "util/histogram.h"

#include <gtest/gtest.h>

namespace s2d {
namespace {

TEST(Log2Histogram, BucketBoundaries) {
  Log2Histogram h;
  h.add(0);  // bucket 0: [0,1)
  h.add(1);  // bucket 1: [1,2)
  h.add(2);  // bucket 2: [2,4)
  h.add(3);
  h.add(4);  // bucket 3: [4,8)
  h.add(7);
  h.add(8);  // bucket 4
  EXPECT_EQ(h.count(), 7u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(3), 2u);
  EXPECT_EQ(h.bucket(4), 1u);
}

TEST(Log2Histogram, LargeValues) {
  Log2Histogram h;
  h.add(1ull << 40);
  EXPECT_EQ(h.bucket(41), 1u);
}

TEST(Log2Histogram, RenderContainsCounts) {
  Log2Histogram h;
  for (int i = 0; i < 5; ++i) h.add(10);
  const std::string out = h.render();
  EXPECT_NE(out.find("5"), std::string::npos);
  EXPECT_NE(out.find("[8, 16)"), std::string::npos);
}

TEST(Log2Histogram, EmptyRenderIsEmpty) {
  Log2Histogram h;
  EXPECT_EQ(h.render(), "");
}

TEST(LinearHistogram, BucketPlacement) {
  LinearHistogram h(10, 5, 4);  // [10,15) [15,20) [20,25) [25,30)
  h.add(9);   // underflow
  h.add(10);  // bucket 0
  h.add(14);
  h.add(15);  // bucket 1
  h.add(29);  // bucket 3
  h.add(30);  // overflow
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 0u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.overflow(), 1u);
}

TEST(LinearHistogram, ZeroWidthIsClamped) {
  LinearHistogram h(0, 0, 2);  // width clamped to 1
  h.add(0);
  h.add(1);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
}

TEST(LinearHistogram, RenderShowsOverflow) {
  LinearHistogram h(0, 10, 2);
  h.add(100);
  const std::string out = h.render();
  EXPECT_NE(out.find(">="), std::string::npos);
}

TEST(Log2HistogramMerge, SumsBucketsAndGrowsToWiderOperand) {
  Log2Histogram a;
  a.add(1);
  a.add(2);
  Log2Histogram b;
  b.add(2);
  b.add(1000);  // bucket far beyond a's current width
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.bucket(1), 1u);  // the two 2s share a bucket
  EXPECT_EQ(a.bucket(2), 2u);
  EXPECT_EQ(a.bucket(10), 1u);  // 1000 -> [512, 1024)
}

TEST(LinearHistogramMerge, SumsBucketsAndOverUnderflow) {
  LinearHistogram a(10, 5, 4);
  a.add(12);
  a.add(5);    // underflow
  LinearHistogram b(10, 5, 4);
  b.add(13);
  b.add(100);  // overflow
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.bucket(0), 2u);
  EXPECT_EQ(a.underflow(), 1u);
  EXPECT_EQ(a.overflow(), 1u);
}

}  // namespace
}  // namespace s2d
