// Corpus regression test: every script in tests/corpus/ is a witness —
// a shrunk counterexample against a baseline, a multi-hop fabric schedule
// that erodes the composed guarantee, or a schedule a correct protocol
// must survive. Each file re-executes here on every ctest run; its
// @expect verdict is the assertion.
//
// Parsing goes through the fabric grammar (a strict superset: every plain
// document is a fabric document on the default line:2 topology). Replay
// dispatches like tools/replay: single-link documents run the legacy
// byte-identical single-link harness, fabric documents run the fabric.
//
// S2D_CORPUS_DIR is injected by tests/CMakeLists.txt.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "harness/fabric.h"
#include "harness/fuzzer.h"
#include "harness/systems.h"
#include "link/script.h"
#include "obs/render.h"

namespace s2d {
namespace {

namespace fs = std::filesystem;

/// Mirrors tools/replay's verdict rule.
bool verdict_matches(const std::string& expect,
                     const ViolationCounts& counts) {
  if (expect == "clean") return counts.safety_total() == 0;
  if (expect == "violating") return counts.safety_total() > 0;
  if (expect == "causality") return counts.causality > 0;
  if (expect == "order") return counts.order > 0;
  if (expect == "duplication") return counts.duplication > 0;
  if (expect == "replay") return counts.replay > 0;
  return false;
}

std::vector<fs::path> corpus_files() {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(S2D_CORPUS_DIR)) {
    if (entry.path().extension() == ".script") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in) << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(Corpus, DirectoryHoldsWitnesses) {
  // An empty corpus means the path wiring broke, not that all is well.
  EXPECT_GE(corpus_files().size(), 3u) << "corpus dir: " << S2D_CORPUS_DIR;
}

TEST(Corpus, EveryScriptParsesAndCarriesAnExpectation) {
  for (const fs::path& path : corpus_files()) {
    const FabricScriptDocParse parsed = parse_fabric_script_doc(slurp(path));
    ASSERT_TRUE(parsed.ok) << path << ":" << parsed.line << ":"
                           << parsed.column << ": " << parsed.error;
    EXPECT_FALSE(parsed.doc.expect.empty())
        << path << ": corpus scripts must pin an @expect verdict";
    EXPECT_FALSE(parsed.doc.decisions.empty()) << path;
  }
}

TEST(Corpus, EveryScriptReplaysToItsExpectedVerdict) {
  for (const fs::path& path : corpus_files()) {
    const FabricScriptDocParse parsed = parse_fabric_script_doc(slurp(path));
    ASSERT_TRUE(parsed.ok) << path << ": " << parsed.error;
    const FabricScriptDoc& doc = parsed.doc;

    ViolationCounts counts;
    if (doc.single_link()) {
      const AdversaryLinkFactory factory =
          make_system_factory(doc.system, doc.seed);
      ASSERT_TRUE(factory) << path << ": unknown @system " << doc.system;
      const ScriptWorkload workload{doc.messages, doc.payload_bytes};
      const DataLink link =
          replay_script(factory, doc.link0_decisions(), workload);
      counts = link.checker().violations();
    } else {
      const FabricRunResult run = replay_fabric_script(doc);
      ASSERT_TRUE(run.ok) << path << ": " << run.error;
      counts = run.violations();
    }
    EXPECT_TRUE(verdict_matches(doc.expect, counts))
        << path << ": expected " << doc.expect << ", replay produced "
        << counts.summary();
  }
}

TEST(Corpus, WhyAnnotationsStillMatchTheReplayedEventSuffix) {
  // Witnesses written by tools/fuzz carry a `# why` block: the event
  // suffix the instrumented replay saw, ending at the violation. Re-run
  // each annotated script and require the suffix to match line for line
  // — if the protocol's event stream drifts, the annotation (and the
  // understanding it encodes) is stale and must be regenerated.
  const std::string kWhyHeader = "# why (violating event suffix):";
  bool saw_annotated = false;
  for (const fs::path& path : corpus_files()) {
    const std::string text = slurp(path);

    // Collect the `#   <event>` lines following the why header.
    std::vector<std::string> recorded;
    std::istringstream lines(text);
    std::string line;
    bool in_why = false;
    while (std::getline(lines, line)) {
      if (line == kWhyHeader) {
        in_why = true;
        continue;
      }
      if (!in_why) continue;
      if (line.rfind("#   ", 0) == 0) {
        recorded.push_back(line.substr(4));
      } else {
        break;  // the why block is contiguous
      }
    }
    if (recorded.empty()) continue;
    saw_annotated = true;

    const FabricScriptDocParse parsed = parse_fabric_script_doc(text);
    ASSERT_TRUE(parsed.ok) << path << ": " << parsed.error;
    const FabricScriptDoc& doc = parsed.doc;
    ASSERT_TRUE(doc.single_link())
        << path << ": # why annotations are a single-link feature";
    const AdversaryLinkFactory factory =
        make_system_factory(doc.system, doc.seed);
    ASSERT_TRUE(factory) << path;

    const std::vector<Event> tail =
        violation_tail(factory, doc.link0_decisions(),
                       ScriptWorkload{doc.messages, doc.payload_bytes});
    ASSERT_EQ(tail.size(), recorded.size()) << path;
    for (std::size_t i = 0; i < tail.size(); ++i) {
      EXPECT_EQ(format_event(tail[i]), recorded[i])
          << path << ": why line " << i << " drifted";
    }
  }
  EXPECT_TRUE(saw_annotated)
      << "no corpus file carries a # why block; regenerate at least one "
         "witness with tools/fuzz";
}

TEST(Corpus, HoldsAllThreeWitnessKinds) {
  // The corpus must keep every kind of witness: schedules GHM survives,
  // shrunk single-link counterexamples that falsify a baseline, and a
  // multi-hop fabric schedule where per-link-§2.6-clean GHM links still
  // erode the composed end-to-end guarantee.
  bool saw_clean_ghm = false;
  bool saw_violating_baseline = false;
  bool saw_fabric_erosion = false;
  for (const fs::path& path : corpus_files()) {
    const FabricScriptDocParse parsed = parse_fabric_script_doc(slurp(path));
    ASSERT_TRUE(parsed.ok) << path;
    const FabricScriptDoc& doc = parsed.doc;
    if (doc.system == "ghm" && doc.expect == "clean") {
      saw_clean_ghm = true;
    }
    if (doc.system != "ghm" && doc.expect != "clean" && doc.single_link()) {
      saw_violating_baseline = true;
    }
    if (doc.system == "ghm" && doc.expect != "clean" && !doc.single_link()) {
      saw_fabric_erosion = true;
    }
  }
  EXPECT_TRUE(saw_clean_ghm);
  EXPECT_TRUE(saw_violating_baseline);
  EXPECT_TRUE(saw_fabric_erosion);
}

}  // namespace
}  // namespace s2d
