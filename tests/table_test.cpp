#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace s2d {
namespace {

TEST(Table, PrintAlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "22"});
  std::ostringstream out;
  t.print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("|-"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  std::ostringstream out;
  t.print_csv(out);
  EXPECT_EQ(out.str(), "a,b\n1,2\n3,4\n");
}

TEST(Table, CsvQuotesCommas) {
  Table t({"a"});
  t.add_row({"x,y"});
  std::ostringstream out;
  t.print_csv(out);
  EXPECT_EQ(out.str(), "a\n\"x,y\"\n");
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Table, SciFormatting) {
  const std::string s = Table::sci(0.000123, 2);
  EXPECT_NE(s.find("e-04"), std::string::npos);
}

TEST(Table, RowCount) {
  Table t({"a"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  EXPECT_EQ(t.rows(), 1u);
}

}  // namespace
}  // namespace s2d
