#include "harness/runner.h"

#include <gtest/gtest.h>

#include "adversary/adversaries.h"
#include "core/ghm.h"
#include "link/datalink.h"

namespace s2d {
namespace {

DataLink quiet_link(std::uint64_t seed) {
  DataLinkConfig cfg;
  cfg.retry_every = 3;
  auto pair = make_ghm(GrowthPolicy::geometric(1.0 / 1024), seed);
  return DataLink(std::move(pair.tm), std::move(pair.rm),
                  std::make_unique<BenignFifoAdversary>(0.0, Rng(seed)), cfg);
}

TEST(MakePayload, ExactLengthAndPrintable) {
  Rng rng(1);
  const std::string p = make_payload(64, rng);
  EXPECT_EQ(p.size(), 64u);
  for (char c : p) EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)));
}

TEST(MakePayload, Deterministic) {
  Rng a(7);
  Rng b(7);
  EXPECT_EQ(make_payload(32, a), make_payload(32, b));
}

TEST(RunWorkload, CompletesAndReports) {
  DataLink link = quiet_link(1);
  const RunReport r = run_workload(link, {.messages = 25}, Rng(2));
  EXPECT_EQ(r.offered, 25u);
  EXPECT_EQ(r.completed, 25u);
  EXPECT_EQ(r.aborted, 0u);
  EXPECT_EQ(r.stalled, 0u);
  EXPECT_EQ(r.steps_per_ok.count(), 25u);
  EXPECT_GT(r.tr_packets, 0u);
  EXPECT_GT(r.rt_packets, 0u);
  EXPECT_GT(r.packets_per_ok(), 0.0);
}

TEST(RunWorkload, UniqueAscendingMessageIds) {
  DataLink link = quiet_link(2);
  (void)run_workload(link, {.messages = 10}, Rng(3), /*first_msg_id=*/100);
  std::vector<std::uint64_t> ids;
  for (const auto& e : link.trace().events()) {
    if (e.kind == ActionKind::kSendMsg) ids.push_back(e.msg_id);
  }
  ASSERT_EQ(ids.size(), 10u);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(ids[i], 100 + i);
  }
}

TEST(RunWorkload, StallStopsWorkloadByDefault) {
  DataLinkConfig cfg;
  auto pair = make_ghm(GrowthPolicy::geometric(1.0 / 1024), 3);
  DataLink link(std::move(pair.tm), std::move(pair.rm),
                std::make_unique<SilentAdversary>(), cfg);
  const RunReport r =
      run_workload(link, {.messages = 5, .max_steps_per_message = 100},
                   Rng(4));
  EXPECT_EQ(r.offered, 1u);
  EXPECT_EQ(r.stalled, 1u);
  EXPECT_EQ(r.completed, 0u);
}

TEST(RunWorkload, DrainStepsRunAfterWorkload) {
  DataLink link = quiet_link(4);
  const RunReport r =
      run_workload(link, {.messages = 2, .drain_steps = 500}, Rng(5));
  EXPECT_EQ(r.completed, 2u);
  EXPECT_GE(r.link.steps, 500u);
}

TEST(RunWorkload, AbortedCountsCrashCutMessages) {
  DataLinkConfig cfg;
  auto pair = make_ghm(GrowthPolicy::geometric(1.0 / 1024), 5);
  DataLink link(std::move(pair.tm), std::move(pair.rm),
                std::make_unique<ScriptedAdversary>(std::vector<Decision>{
                    Decision::crash_t()}),
                cfg);
  const RunReport r = run_workload(
      link, {.messages = 1, .max_steps_per_message = 50}, Rng(6));
  EXPECT_EQ(r.aborted, 1u);
  EXPECT_EQ(r.completed, 0u);
}

}  // namespace
}  // namespace s2d
