// Unit tests for the adversary implementations: each one must honour its
// contract (FIFO order, fairness windows, attack phases) since experiment
// conclusions depend on those contracts.
#include "adversary/adversaries.h"

#include <gtest/gtest.h>

namespace s2d {
namespace {

/// Minimal channel fixture: lets tests push packets and build views.
struct ChannelFixture {
  PayloadArena arena;
  Channel tr{Dir::kTR, nullptr, &arena};
  Channel rt{Dir::kRT, nullptr, &arena};
  std::uint64_t step = 0;

  PacketId push_tr(std::size_t len = 8) {
    return tr.send(Bytes(len, std::byte{0xaa}), step);
  }
  PacketId push_rt(std::size_t len = 4) {
    return rt.send(Bytes(len, std::byte{0xbb}), step);
  }
  AdversaryView view() { return AdversaryView(tr, rt, ++step, 0, 0); }
};

TEST(BenignFifo, DeliversInFifoOrderPerChannel) {
  ChannelFixture fx;
  BenignFifoAdversary adv(0.0, Rng(1));
  fx.push_tr();
  fx.push_tr();
  fx.push_tr();
  std::vector<PacketId> order;
  for (int i = 0; i < 3; ++i) {
    const Decision d = adv.next(fx.view());
    ASSERT_EQ(d.kind, Decision::Kind::kDeliverTR);
    order.push_back(d.pkt);
  }
  EXPECT_EQ(order, (std::vector<PacketId>{0, 1, 2}));
}

TEST(BenignFifo, AlternatesBetweenChannels) {
  ChannelFixture fx;
  BenignFifoAdversary adv(0.0, Rng(2));
  fx.push_tr();
  fx.push_tr();
  fx.push_rt();
  fx.push_rt();
  int tr_count = 0;
  int rt_count = 0;
  for (int i = 0; i < 4; ++i) {
    const Decision d = adv.next(fx.view());
    tr_count += d.kind == Decision::Kind::kDeliverTR ? 1 : 0;
    rt_count += d.kind == Decision::Kind::kDeliverRT ? 1 : 0;
  }
  EXPECT_EQ(tr_count, 2);
  EXPECT_EQ(rt_count, 2);
}

TEST(BenignFifo, IdleWhenDrained) {
  ChannelFixture fx;
  BenignFifoAdversary adv(0.0, Rng(3));
  EXPECT_EQ(adv.next(fx.view()).kind, Decision::Kind::kIdle);
  fx.push_tr();
  (void)adv.next(fx.view());
  EXPECT_EQ(adv.next(fx.view()).kind, Decision::Kind::kIdle);
}

TEST(BenignFifo, FullLossDeliversNothingButConsumes) {
  ChannelFixture fx;
  BenignFifoAdversary adv(1.0, Rng(4));
  for (int i = 0; i < 5; ++i) fx.push_tr();
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(adv.next(fx.view()).kind, Decision::Kind::kIdle);
  }
}

TEST(BenignFifo, NeverDuplicates) {
  ChannelFixture fx;
  BenignFifoAdversary adv(0.3, Rng(5));
  for (int i = 0; i < 50; ++i) fx.push_tr();
  std::vector<bool> seen(50, false);
  for (int i = 0; i < 200; ++i) {
    const Decision d = adv.next(fx.view());
    if (d.kind == Decision::Kind::kDeliverTR) {
      EXPECT_FALSE(seen[static_cast<std::size_t>(d.pkt)]) << d.pkt;
      seen[static_cast<std::size_t>(d.pkt)] = true;
    }
  }
}

TEST(RandomFault, PureLossNeverCrashes) {
  ChannelFixture fx;
  RandomFaultAdversary adv(FaultProfile::lossy(0.5), Rng(6));
  for (int i = 0; i < 100; ++i) fx.push_tr();
  for (int i = 0; i < 100; ++i) {
    const auto kind = adv.next(fx.view()).kind;
    EXPECT_NE(kind, Decision::Kind::kCrashT);
    EXPECT_NE(kind, Decision::Kind::kCrashR);
  }
}

TEST(RandomFault, CrashProbabilityOneCrashesImmediately) {
  ChannelFixture fx;
  FaultProfile p;
  p.crash_t = 1.0;
  RandomFaultAdversary adv(p, Rng(7));
  EXPECT_EQ(adv.next(fx.view()).kind, Decision::Kind::kCrashT);
}

TEST(RandomFault, DuplicationRedeliversOldPackets) {
  ChannelFixture fx;
  FaultProfile p;
  p.duplicate = 1.0;
  RandomFaultAdversary adv(p, Rng(8));
  fx.push_tr();
  // With duplicate = 1 every decision redelivers from history, so the same
  // single packet can be delivered many times.
  int deliveries = 0;
  for (int i = 0; i < 10; ++i) {
    const Decision d = adv.next(fx.view());
    if (d.kind == Decision::Kind::kDeliverTR) {
      EXPECT_EQ(d.pkt, 0u);
      ++deliveries;
    }
  }
  EXPECT_GT(deliveries, 5);
}

TEST(RandomFault, ReorderEventuallyDeliversOutOfOrder) {
  ChannelFixture fx;
  FaultProfile p;
  p.reorder = 1.0;
  RandomFaultAdversary adv(p, Rng(9));
  for (int i = 0; i < 20; ++i) fx.push_tr();
  bool out_of_order = false;
  PacketId last = 0;
  for (int i = 0; i < 20; ++i) {
    const Decision d = adv.next(fx.view());
    if (d.kind == Decision::Kind::kDeliverTR) {
      if (d.pkt < last) out_of_order = true;
      last = d.pkt;
    }
  }
  EXPECT_TRUE(out_of_order);
}

TEST(ReplayAttacker, PhasesInOrder) {
  ChannelFixture fx;
  ReplayAttacker adv(/*attack_after=*/3, Rng(10));
  // Below threshold: FIFO recording.
  fx.push_tr();
  EXPECT_EQ(adv.next(fx.view()).kind, Decision::Kind::kDeliverTR);
  fx.push_tr();
  fx.push_tr();  // now >= 3 T->R packets
  EXPECT_FALSE(adv.attacking());
  EXPECT_EQ(adv.next(fx.view()).kind, Decision::Kind::kCrashT);
  EXPECT_EQ(adv.next(fx.view()).kind, Decision::Kind::kCrashR);
  EXPECT_TRUE(adv.attacking());
  // Replay phase: only T->R deliveries of recorded packets, forever.
  for (int i = 0; i < 20; ++i) {
    const Decision d = adv.next(fx.view());
    EXPECT_EQ(d.kind, Decision::Kind::kDeliverTR);
    EXPECT_LT(d.pkt, 3u);
  }
}

TEST(ReplayAttacker, ReplayCyclesThroughAllRecordedPackets) {
  ChannelFixture fx;
  ReplayAttacker adv(3, Rng(11));
  fx.push_tr();
  fx.push_tr();
  fx.push_tr();
  (void)adv.next(fx.view());  // crash T
  (void)adv.next(fx.view());  // crash R
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 30; ++i) {
    const Decision d = adv.next(fx.view());
    ASSERT_EQ(d.kind, Decision::Kind::kDeliverTR);
    ++counts[static_cast<std::size_t>(d.pkt)];
  }
  for (int c : counts) EXPECT_EQ(c, 10);  // uniform cycling
}

TEST(FairnessEnvelope, ForcesDeliveryEveryWindow) {
  ChannelFixture fx;
  FairnessEnvelope adv(std::make_unique<SilentAdversary>(), /*window=*/5);
  fx.push_tr();
  int delivered = 0;
  for (int i = 0; i < 25; ++i) {
    fx.push_rt();  // keep traffic flowing on the other channel too
    const Decision d = adv.next(fx.view());
    delivered += d.kind != Decision::Kind::kIdle ? 1 : 0;
  }
  // 25 steps / window 5 = 5 forced deliveries per starving channel.
  EXPECT_GE(delivered, 5);
}

TEST(FairnessEnvelope, EventuallyDeliversNewPackets) {
  // Axiom 3's precise shape: packets sent after any point are eventually
  // delivered, even when the watermark starts far behind.
  ChannelFixture fx;
  FairnessEnvelope adv(std::make_unique<SilentAdversary>(), 2);
  for (int i = 0; i < 50; ++i) fx.push_tr();  // big backlog
  const PacketId fresh = fx.push_tr();        // the packet we care about
  bool fresh_delivered = false;
  for (int i = 0; i < 300 && !fresh_delivered; ++i) {
    const Decision d = adv.next(fx.view());
    fresh_delivered = d.kind == Decision::Kind::kDeliverTR && d.pkt == fresh;
  }
  EXPECT_TRUE(fresh_delivered);
}

TEST(FairnessEnvelope, InnerDeliveriesResetWindow) {
  ChannelFixture fx;
  // Inner adversary that always delivers the newest T->R packet.
  class Newest final : public Adversary {
   public:
    Decision next(const AdversaryView& v) override {
      if (v.tr_packets().empty()) return Decision::idle();
      return Decision::deliver_tr(v.tr_packets().back().id);
    }
    [[nodiscard]] std::string name() const override { return "newest"; }
  };
  FairnessEnvelope adv(std::make_unique<Newest>(), 3);
  for (int i = 0; i < 9; ++i) {
    fx.push_tr();
    const Decision d = adv.next(fx.view());
    // The inner adversary keeps delivering; the envelope must not add
    // extra forced deliveries of ancient packets in between.
    EXPECT_EQ(d.kind, Decision::Kind::kDeliverTR);
  }
}

TEST(Scripted, PlaysBackThenIdles) {
  ChannelFixture fx;
  ScriptedAdversary adv({Decision::crash_t(), Decision::deliver_tr(0)});
  EXPECT_EQ(adv.next(fx.view()).kind, Decision::Kind::kCrashT);
  EXPECT_EQ(adv.next(fx.view()).kind, Decision::Kind::kDeliverTR);
  EXPECT_EQ(adv.next(fx.view()).kind, Decision::Kind::kIdle);
  EXPECT_EQ(adv.next(fx.view()).kind, Decision::Kind::kIdle);
}

TEST(LengthTargeting, DropsOnlyLongPackets) {
  ChannelFixture fx;
  LengthTargetingAdversary adv(/*min_drop_len=*/10, /*drop_prob=*/1.0,
                               Rng(12));
  fx.push_tr(20);  // long: dropped
  fx.push_tr(4);   // short: delivered
  std::vector<PacketId> delivered;
  for (int i = 0; i < 4; ++i) {
    const Decision d = adv.next(fx.view());
    if (d.kind == Decision::Kind::kDeliverTR) delivered.push_back(d.pkt);
  }
  EXPECT_EQ(delivered, (std::vector<PacketId>{1}));
}

TEST(StaleFirst, AlwaysDeliversOldestPending) {
  ChannelFixture fx;
  StaleFirstAdversary adv(0.0, Rng(20));
  fx.push_tr();
  fx.push_tr();
  fx.push_tr();
  std::vector<PacketId> order;
  for (int i = 0; i < 3; ++i) {
    const Decision d = adv.next(fx.view());
    ASSERT_EQ(d.kind, Decision::Kind::kDeliverTR);
    order.push_back(d.pkt);
  }
  EXPECT_EQ(order, (std::vector<PacketId>{0, 1, 2}));
}

TEST(StaleFirst, ServesFullerBacklogFirst) {
  ChannelFixture fx;
  StaleFirstAdversary adv(0.0, Rng(21));
  fx.push_tr();
  fx.push_rt();
  fx.push_rt();
  fx.push_rt();
  const Decision d = adv.next(fx.view());
  EXPECT_EQ(d.kind, Decision::Kind::kDeliverRT);
  EXPECT_EQ(d.pkt, 0u);
}

TEST(Names, AreStable) {
  EXPECT_EQ(BenignFifoAdversary(0, Rng(1)).name(), "benign-fifo");
  EXPECT_EQ(ReplayAttacker(1, Rng(1)).name(), "replay-attacker");
  EXPECT_EQ(
      FairnessEnvelope(std::make_unique<SilentAdversary>(), 1).name(),
      "fair(silent)");
}

}  // namespace
}  // namespace s2d
