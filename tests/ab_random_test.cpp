// The [AB89]-style randomized session baseline: self-stabilizing over
// FIFO channels (transient violations confined to crash-recovery windows,
// steady state exactly-once in-order), broken under non-FIFO faults.
#include "baseline/ab_random.h"

#include <gtest/gtest.h>

#include "adversary/adversaries.h"
#include "harness/runner.h"
#include "link/datalink.h"

namespace s2d {
namespace {

DataLink make_link(std::unique_ptr<Adversary> adv, std::uint64_t seed) {
  DataLinkConfig cfg;
  cfg.retry_every = 0;     // passive receiver
  cfg.tx_timer_every = 4;  // transmitter-driven retransmission
  return DataLink(std::make_unique<RandomSessionTransmitter>(Rng(seed)),
                  std::make_unique<RandomSessionReceiver>(), std::move(adv),
                  cfg);
}

TEST(RsFrames, RoundTrip) {
  const RsDataFrame f{0xabcdefull, 7, {3, "pay"}};
  const auto g = RsDataFrame::decode(f.encode());
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->session, 0xabcdefull);
  EXPECT_EQ(g->seq, 7u);
  EXPECT_EQ(g->msg.payload, "pay");
  const RsAckFrame a{5, 2};
  const auto b = RsAckFrame::decode(a.encode());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->session, 5u);
  EXPECT_EQ(b->seq, 2u);
}

TEST(RsFrames, CrossDecodeRejected) {
  EXPECT_FALSE(RsAckFrame::decode(RsDataFrame{1, 0, {1, "x"}}.encode()));
  EXPECT_FALSE(RsDataFrame::decode(RsAckFrame{1, 0}.encode()));
}

TEST(RandomSession, CleanOverLossyFifoWithoutCrashes) {
  for (double loss : {0.0, 0.3}) {
    DataLink link = make_link(
        std::make_unique<BenignFifoAdversary>(loss, Rng(1)), 2);
    const RunReport r = run_workload(link, {.messages = 50}, Rng(3));
    EXPECT_EQ(r.completed, 50u) << loss;
    EXPECT_TRUE(link.checker().clean())
        << loss << " " << link.checker().violations().summary();
  }
}

TEST(RandomSession, FreshSessionAdoptedAfterTransmitterCrash) {
  // crash^T between messages: the new incarnation's (session', 0) frame is
  // adopted and the stream continues with no violation.
  struct CrashBetween final : Adversary {
    BenignFifoAdversary fifo{0.0, Rng(4)};
    std::uint64_t step = 0;
    Decision next(const AdversaryView& v) override {
      ++step;
      if (step == 40) return Decision::crash_t();
      return fifo.next(v);
    }
    std::string name() const override { return "crash-between"; }
  };
  DataLink link = make_link(std::make_unique<CrashBetween>(), 5);
  const RunReport r = run_workload(
      link, {.messages = 20, .stop_on_stall = false}, Rng(6));
  EXPECT_GE(r.completed + r.aborted, 20u);
  EXPECT_TRUE(link.checker().clean()) << link.checker().violations().summary();
}

TEST(RandomSession, SelfStabilizesAfterCrashStorms) {
  // Under random crashes on a FIFO pipe, transient violations are allowed
  // (the self-stabilization spec); they must stay RARE relative to the
  // message volume, and the stream must keep completing.
  std::uint64_t completed = 0;
  std::uint64_t violations = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    FaultProfile p;
    p.loss = 0.05;
    p.crash_t = 0.004;
    p.crash_r = 0.004;
    DataLink link = make_link(
        std::make_unique<RandomFaultAdversary>(p, Rng(seed + 10)), seed);
    const RunReport r = run_workload(
        link, {.messages = 100, .stop_on_stall = false}, Rng(seed + 20));
    completed += r.completed;
    violations += link.checker().violations().safety_total();
  }
  EXPECT_GT(completed, 900u);
  // Strictly below 2% of messages: violations happen only inside crash
  // recovery windows (compare ABP, which exceeds 25% in E6's crash column).
  EXPECT_LT(violations * 50, completed);
}

TEST(RandomSession, SafeUnderDupReorderWithoutCrashes) {
  // The classical fact this baseline embodies: UNBOUNDED sequence numbers
  // (plus a session nonce) survive duplication and reordering — the
  // non-FIFO problem only bites protocols that bound or reset their
  // counters. The price appears elsewhere: the counter never resets
  // (§1's storage criticism) and crashes still break it (below).
  std::uint64_t completed = 0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    FaultProfile p;
    p.duplicate = 0.3;
    p.reorder = 0.5;
    DataLink link = make_link(
        std::make_unique<RandomFaultAdversary>(p, Rng(seed + 30)), seed);
    const RunReport r = run_workload(
        link, {.messages = 60, .stop_on_stall = false}, Rng(seed + 40));
    completed += r.completed;
    EXPECT_TRUE(link.checker().clean())
        << "seed=" << seed << " " << link.checker().violations().summary();
  }
  EXPECT_GT(completed, 300u);
}

TEST(RandomSession, BreaksWhenDuplicationMeetsCrashes) {
  // The stale-session replay: after a transmitter crash the receiver
  // accepts any (session, 0) frame — a duplicated zero-frame of an OLD
  // incarnation re-delivers an old message.
  std::uint64_t violations = 0;
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    FaultProfile p;
    p.duplicate = 0.4;
    p.reorder = 0.3;
    p.crash_t = 0.01;
    p.crash_r = 0.01;
    DataLink link = make_link(
        std::make_unique<RandomFaultAdversary>(p, Rng(seed + 50)), seed);
    (void)run_workload(link, {.messages = 80, .stop_on_stall = false},
                       Rng(seed + 60));
    violations += link.checker().violations().safety_total();
  }
  EXPECT_GT(violations, 0u);
}

TEST(RandomSession, ReceiverReadoptsAfterOwnCrash) {
  RandomSessionReceiver rx;
  RxOutbox out;
  rx.on_receive_pkt(RsDataFrame{9, 0, {1, "a"}}.encode(), out);
  ASSERT_EQ(out.delivered().size(), 1u);
  EXPECT_TRUE(rx.locked());
  rx.on_crash();
  EXPECT_FALSE(rx.locked());
  // Next frame (any seq) is adopted and delivered; §2.6 excuses the
  // post-crash^R duplicate.
  rx.on_receive_pkt(RsDataFrame{9, 0, {1, "a"}}.encode(), out);
  EXPECT_EQ(out.delivered().size(), 2u);
  EXPECT_TRUE(rx.locked());
}

TEST(RandomSession, StaleSessionFragmentsIgnored) {
  RandomSessionReceiver rx;
  RxOutbox out;
  rx.on_receive_pkt(RsDataFrame{9, 0, {1, "a"}}.encode(), out);
  // A stale non-zero-seq frame from an older incarnation must not flip
  // the lock or deliver.
  rx.on_receive_pkt(RsDataFrame{7, 3, {99, "old"}}.encode(), out);
  EXPECT_EQ(out.delivered().size(), 1u);
}

}  // namespace
}  // namespace s2d
