#include "transport/network.h"

#include <gtest/gtest.h>

namespace s2d {
namespace {

Bytes frame_of(std::string_view s) {
  Bytes out;
  for (char c : s) out.push_back(static_cast<std::byte>(c));
  return out;
}

TEST(NetworkGraph, LineTopology) {
  const auto g = NetworkGraph::line(5);
  EXPECT_EQ(g.node_count(), 5u);
  EXPECT_EQ(g.edge_count(), 4u);
  EXPECT_EQ(g.neighbors(0).size(), 1u);
  EXPECT_EQ(g.neighbors(2).size(), 2u);
  EXPECT_TRUE(g.connected());
}

TEST(NetworkGraph, RingTopology) {
  const auto g = NetworkGraph::ring(6);
  EXPECT_EQ(g.edge_count(), 6u);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(g.neighbors(v).size(), 2u);
}

TEST(NetworkGraph, GridTopology) {
  const auto g = NetworkGraph::grid(3, 3);
  EXPECT_EQ(g.node_count(), 9u);
  EXPECT_EQ(g.edge_count(), 12u);  // 2 * 3 * 2 horizontal+vertical
  EXPECT_EQ(g.neighbors(4).size(), 4u);  // centre
  EXPECT_EQ(g.neighbors(0).size(), 2u);  // corner
}

TEST(NetworkGraph, RandomGraphIsConnected) {
  Rng rng(1);
  for (int i = 0; i < 5; ++i) {
    const auto g = NetworkGraph::random(12, 0.3, rng);
    EXPECT_TRUE(g.connected());
    EXPECT_EQ(g.node_count(), 12u);
  }
}

TEST(NetworkGraph, DuplicateEdgesIgnored) {
  auto g = NetworkGraph::line(3);
  const std::size_t before = g.edge_count();
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  EXPECT_EQ(g.edge_count(), before);
}

TEST(NetworkGraph, ShortestPathOnLine) {
  const auto g = NetworkGraph::line(5);
  const auto path = g.shortest_path(0, 4);
  EXPECT_EQ(path, (std::vector<NodeId>{0, 1, 2, 3, 4}));
}

TEST(NetworkGraph, ShortestPathRespectsBannedEdges) {
  const auto g = NetworkGraph::ring(6);
  const auto direct = g.shortest_path(0, 2);
  EXPECT_EQ(direct.size(), 3u);  // 0-1-2
  const auto detour =
      g.shortest_path(0, 2, {NetworkGraph::edge_key(1, 2)});
  EXPECT_EQ(detour.size(), 5u);  // 0-5-4-3-2
}

TEST(NetworkGraph, UnreachableReturnsEmpty) {
  const auto g = NetworkGraph::line(3);
  const auto path =
      g.shortest_path(0, 2, {NetworkGraph::edge_key(0, 1)});
  EXPECT_TRUE(path.empty());
}

TEST(NetworkGraph, EdgeKeySymmetric) {
  EXPECT_EQ(NetworkGraph::edge_key(3, 7), NetworkGraph::edge_key(7, 3));
  EXPECT_NE(NetworkGraph::edge_key(3, 7), NetworkGraph::edge_key(3, 8));
}

TEST(Network, FrameDeliveredWithinDelayBounds) {
  NetworkConfig cfg;
  cfg.delay_min = 2;
  cfg.delay_max = 4;
  Network net(NetworkGraph::line(2), cfg, Rng(1));
  ASSERT_TRUE(net.send_frame(0, 1, frame_of("hi")));
  std::uint64_t arrived_at = 0;
  for (std::uint64_t t = 1; t <= 10; ++t) {
    net.step();
    if (auto a = net.poll(1)) {
      arrived_at = t;
      EXPECT_EQ(a->from, 0u);
      break;
    }
  }
  EXPECT_GE(arrived_at, 2u);
  EXPECT_LE(arrived_at, 4u);
}

TEST(Network, NoDeliveryOnNonexistentLink) {
  Network net(NetworkGraph::line(3), {}, Rng(2));
  EXPECT_FALSE(net.send_frame(0, 2, frame_of("x")));  // not adjacent
}

TEST(Network, DownLinkObservableAtSender) {
  Network net(NetworkGraph::line(2), {}, Rng(3));
  net.set_link_up(0, 1, false);
  EXPECT_FALSE(net.send_frame(0, 1, frame_of("x")));
  net.set_link_up(0, 1, true);
  EXPECT_TRUE(net.send_frame(0, 1, frame_of("x")));
}

TEST(Network, LossDropsSilently) {
  NetworkConfig cfg;
  cfg.frame_loss = 1.0;
  Network net(NetworkGraph::line(2), cfg, Rng(4));
  EXPECT_TRUE(net.send_frame(0, 1, frame_of("x")));  // loss is silent
  for (int i = 0; i < 10; ++i) net.step();
  EXPECT_FALSE(net.poll(1).has_value());
}

TEST(Network, CorruptionFlipsExactlyOneByte) {
  NetworkConfig cfg;
  cfg.frame_corrupt = 1.0;
  cfg.delay_min = 1;
  cfg.delay_max = 1;
  Network net(NetworkGraph::line(2), cfg, Rng(5));
  const Bytes sent = frame_of("abcdef");
  ASSERT_TRUE(net.send_frame(0, 1, sent));
  net.step();
  const auto a = net.poll(1);
  ASSERT_TRUE(a.has_value());
  ASSERT_EQ(a->frame.size(), sent.size());
  std::size_t diffs = 0;
  for (std::size_t i = 0; i < sent.size(); ++i) {
    diffs += a->frame[i] != sent[i] ? 1u : 0u;
  }
  EXPECT_EQ(diffs, 1u);
}

TEST(Network, LinkFlappingRecovers) {
  NetworkConfig cfg;
  cfg.link_fail = 1.0;     // goes down immediately...
  cfg.link_recover = 1.0;  // ...and back up next step
  Network net(NetworkGraph::line(2), cfg, Rng(6));
  EXPECT_TRUE(net.link_up(0, 1));
  net.step();
  EXPECT_FALSE(net.link_up(0, 1));
  net.step();
  EXPECT_TRUE(net.link_up(0, 1));
}

TEST(Network, StatsCount) {
  NetworkConfig cfg;
  cfg.delay_min = 1;
  cfg.delay_max = 1;
  Network net(NetworkGraph::line(2), cfg, Rng(7));
  (void)net.send_frame(0, 1, frame_of("abc"));
  net.step();
  (void)net.poll(1);
  EXPECT_EQ(net.frames_attempted(), 1u);
  EXPECT_EQ(net.frames_delivered(), 1u);
  EXPECT_EQ(net.bytes_attempted(), 3u);
}

TEST(Network, FifoWithinEqualDelays) {
  NetworkConfig cfg;
  cfg.delay_min = 1;
  cfg.delay_max = 1;
  Network net(NetworkGraph::line(2), cfg, Rng(8));
  (void)net.send_frame(0, 1, frame_of("first"));
  (void)net.send_frame(0, 1, frame_of("second"));
  net.step();
  const auto a = net.poll(1);
  const auto b = net.poll(1);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->frame, frame_of("first"));
  EXPECT_EQ(b->frame, frame_of("second"));
}

}  // namespace
}  // namespace s2d
