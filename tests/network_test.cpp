#include "transport/network.h"

#include <gtest/gtest.h>

namespace s2d {
namespace {

Bytes frame_of(std::string_view s) {
  Bytes out;
  for (char c : s) out.push_back(static_cast<std::byte>(c));
  return out;
}

TEST(NetworkGraph, LineTopology) {
  const auto g = NetworkGraph::line(5);
  EXPECT_EQ(g.node_count(), 5u);
  EXPECT_EQ(g.edge_count(), 4u);
  EXPECT_EQ(g.neighbors(0).size(), 1u);
  EXPECT_EQ(g.neighbors(2).size(), 2u);
  EXPECT_TRUE(g.connected());
}

TEST(NetworkGraph, RingTopology) {
  const auto g = NetworkGraph::ring(6);
  EXPECT_EQ(g.edge_count(), 6u);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(g.neighbors(v).size(), 2u);
}

TEST(NetworkGraph, GridTopology) {
  const auto g = NetworkGraph::grid(3, 3);
  EXPECT_EQ(g.node_count(), 9u);
  EXPECT_EQ(g.edge_count(), 12u);  // 2 * 3 * 2 horizontal+vertical
  EXPECT_EQ(g.neighbors(4).size(), 4u);  // centre
  EXPECT_EQ(g.neighbors(0).size(), 2u);  // corner
}

TEST(NetworkGraph, TreeTopology) {
  const auto g = NetworkGraph::tree(7);
  EXPECT_EQ(g.node_count(), 7u);
  EXPECT_EQ(g.edge_count(), 6u);  // a tree: n - 1 edges
  EXPECT_TRUE(g.connected());
  // Heap layout: node 0 is the root with children 1 and 2.
  EXPECT_EQ(g.neighbors(0).size(), 2u);
}

TEST(NetworkGraph, ExpanderTopology) {
  const auto g = NetworkGraph::expander(8);
  EXPECT_EQ(g.node_count(), 8u);
  EXPECT_TRUE(g.connected());
  // Ring plus skip edges: strictly denser than the bare ring.
  EXPECT_GT(g.edge_count(), 8u);
  // Low diameter: every node reaches every other within 3 hops on n=8.
  for (NodeId u = 0; u < 8; ++u) {
    for (NodeId v = 0; v < 8; ++v) {
      const auto path = g.shortest_path(u, v);
      ASSERT_FALSE(path.empty());
      EXPECT_LE(path.size(), 4u) << u << "->" << v;
    }
  }
}

TEST(NetworkGraph, ParseTopologyAccepts) {
  for (const char* spec :
       {"line:5", "chain:5", "ring:6", "grid:3x4", "tree:7", "expander:8",
        "random:12:0.3", "random:12:0.3:9"}) {
    std::string err;
    const auto g = parse_topology(spec, &err);
    ASSERT_TRUE(g.has_value()) << spec << ": " << err;
    EXPECT_TRUE(g->connected()) << spec;
  }
  // chain is an alias for line.
  EXPECT_EQ(parse_topology("chain:5")->edge_count(),
            parse_topology("line:5")->edge_count());
  EXPECT_EQ(parse_topology("grid:3x4")->node_count(), 12u);
}

TEST(NetworkGraph, ParseTopologyRejects) {
  for (const char* spec : {"", "bogus:3", "line", "line:1", "ring:0",
                           "grid:3", "grid:0x4", "random:12",
                           "random:12:nope", "line:abc"}) {
    std::string err;
    EXPECT_FALSE(parse_topology(spec, &err).has_value()) << spec;
    EXPECT_FALSE(err.empty()) << spec;
  }
}

TEST(NetworkGraph, EdgeListIsCanonicallySorted) {
  // The fabric and the fuzzer address edges by edge_list() index; the
  // (lo, hi) ascending order is part of the deterministic identity of
  // every fabric script.
  const auto edges = NetworkGraph::grid(2, 2).edge_list();
  const std::vector<std::pair<NodeId, NodeId>> want = {
      {0, 1}, {0, 2}, {1, 3}, {2, 3}};
  EXPECT_EQ(edges, want);
  for (const auto& [lo, hi] : edges) EXPECT_LT(lo, hi);
}

TEST(NetworkGraph, RandomGraphIsConnected) {
  Rng rng(1);
  for (int i = 0; i < 5; ++i) {
    const auto g = NetworkGraph::random(12, 0.3, rng);
    EXPECT_TRUE(g.connected());
    EXPECT_EQ(g.node_count(), 12u);
  }
}

TEST(NetworkGraph, DuplicateEdgesIgnored) {
  auto g = NetworkGraph::line(3);
  const std::size_t before = g.edge_count();
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  EXPECT_EQ(g.edge_count(), before);
}

TEST(NetworkGraph, ShortestPathOnLine) {
  const auto g = NetworkGraph::line(5);
  const auto path = g.shortest_path(0, 4);
  EXPECT_EQ(path, (std::vector<NodeId>{0, 1, 2, 3, 4}));
}

TEST(NetworkGraph, ShortestPathRespectsBannedEdges) {
  const auto g = NetworkGraph::ring(6);
  const auto direct = g.shortest_path(0, 2);
  EXPECT_EQ(direct.size(), 3u);  // 0-1-2
  const auto detour =
      g.shortest_path(0, 2, {NetworkGraph::edge_key(1, 2)});
  EXPECT_EQ(detour.size(), 5u);  // 0-5-4-3-2
}

TEST(NetworkGraph, UnreachableReturnsEmpty) {
  const auto g = NetworkGraph::line(3);
  const auto path =
      g.shortest_path(0, 2, {NetworkGraph::edge_key(0, 1)});
  EXPECT_TRUE(path.empty());
}

TEST(NetworkGraph, EdgeKeySymmetric) {
  EXPECT_EQ(NetworkGraph::edge_key(3, 7), NetworkGraph::edge_key(7, 3));
  EXPECT_NE(NetworkGraph::edge_key(3, 7), NetworkGraph::edge_key(3, 8));
}

TEST(Network, FrameDeliveredWithinDelayBounds) {
  NetworkConfig cfg;
  cfg.delay_min = 2;
  cfg.delay_max = 4;
  Network net(NetworkGraph::line(2), cfg, Rng(1));
  ASSERT_TRUE(net.send_frame(0, 1, frame_of("hi")));
  std::uint64_t arrived_at = 0;
  for (std::uint64_t t = 1; t <= 10; ++t) {
    net.step();
    if (auto a = net.poll(1)) {
      arrived_at = t;
      EXPECT_EQ(a->from, 0u);
      break;
    }
  }
  EXPECT_GE(arrived_at, 2u);
  EXPECT_LE(arrived_at, 4u);
}

TEST(Network, NoDeliveryOnNonexistentLink) {
  Network net(NetworkGraph::line(3), {}, Rng(2));
  EXPECT_FALSE(net.send_frame(0, 2, frame_of("x")));  // not adjacent
}

TEST(Network, DownLinkObservableAtSender) {
  Network net(NetworkGraph::line(2), {}, Rng(3));
  net.set_link_up(0, 1, false);
  EXPECT_FALSE(net.send_frame(0, 1, frame_of("x")));
  net.set_link_up(0, 1, true);
  EXPECT_TRUE(net.send_frame(0, 1, frame_of("x")));
}

TEST(Network, LossDropsSilently) {
  NetworkConfig cfg;
  cfg.frame_loss = 1.0;
  Network net(NetworkGraph::line(2), cfg, Rng(4));
  EXPECT_TRUE(net.send_frame(0, 1, frame_of("x")));  // loss is silent
  for (int i = 0; i < 10; ++i) net.step();
  EXPECT_FALSE(net.poll(1).has_value());
}

TEST(Network, CorruptionFlipsExactlyOneByte) {
  NetworkConfig cfg;
  cfg.frame_corrupt = 1.0;
  cfg.delay_min = 1;
  cfg.delay_max = 1;
  Network net(NetworkGraph::line(2), cfg, Rng(5));
  const Bytes sent = frame_of("abcdef");
  ASSERT_TRUE(net.send_frame(0, 1, sent));
  net.step();
  const auto a = net.poll(1);
  ASSERT_TRUE(a.has_value());
  ASSERT_EQ(a->frame.size(), sent.size());
  std::size_t diffs = 0;
  for (std::size_t i = 0; i < sent.size(); ++i) {
    diffs += a->frame[i] != sent[i] ? 1u : 0u;
  }
  EXPECT_EQ(diffs, 1u);
}

TEST(Network, LinkFlappingRecovers) {
  NetworkConfig cfg;
  cfg.link_fail = 1.0;     // goes down immediately...
  cfg.link_recover = 1.0;  // ...and back up next step
  Network net(NetworkGraph::line(2), cfg, Rng(6));
  EXPECT_TRUE(net.link_up(0, 1));
  net.step();
  EXPECT_FALSE(net.link_up(0, 1));
  net.step();
  EXPECT_TRUE(net.link_up(0, 1));
}

TEST(Network, StatsCount) {
  NetworkConfig cfg;
  cfg.delay_min = 1;
  cfg.delay_max = 1;
  Network net(NetworkGraph::line(2), cfg, Rng(7));
  (void)net.send_frame(0, 1, frame_of("abc"));
  net.step();
  (void)net.poll(1);
  EXPECT_EQ(net.frames_attempted(), 1u);
  EXPECT_EQ(net.frames_delivered(), 1u);
  EXPECT_EQ(net.bytes_attempted(), 3u);
}

TEST(Network, FifoWithinEqualDelays) {
  NetworkConfig cfg;
  cfg.delay_min = 1;
  cfg.delay_max = 1;
  Network net(NetworkGraph::line(2), cfg, Rng(8));
  (void)net.send_frame(0, 1, frame_of("first"));
  (void)net.send_frame(0, 1, frame_of("second"));
  net.step();
  const auto a = net.poll(1);
  const auto b = net.poll(1);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->frame, frame_of("first"));
  EXPECT_EQ(b->frame, frame_of("second"));
}

TEST(Network, InFlightDeliveryOrderRegression) {
  // The in-flight queue moved from a std::multimap keyed by due step to a
  // flat insertion-ordered vector scanned by due. The observable contract
  // — frames arrive in (due ascending, insertion order within equal due)
  // sequence — must not have moved with it. Tag every frame with its
  // global insertion index, blast both directions over several steps, and
  // check each per-step inbox batch preserves insertion order and every
  // delay stays within [delay_min, delay_max].
  NetworkConfig cfg;
  cfg.delay_min = 1;
  cfg.delay_max = 4;
  Network net(NetworkGraph::line(2), cfg, Rng(99));

  std::vector<std::uint64_t> sent_at(64, 0);
  std::uint32_t next_tag = 0;
  std::uint64_t delivered = 0;
  for (std::uint64_t t = 0; t < 40; ++t) {
    if (next_tag + 2 <= 64) {
      for (int dir = 0; dir < 2; ++dir) {
        Bytes frame{static_cast<std::byte>(next_tag)};
        sent_at[next_tag] = t;
        ASSERT_TRUE(net.send_frame(dir == 0 ? 0 : 1, dir == 0 ? 1 : 0,
                                   std::move(frame)));
        ++next_tag;
      }
    }
    net.step();
    for (NodeId node : {0u, 1u}) {
      std::uint32_t prev_tag = 0;
      bool first = true;
      while (auto a = net.poll(node)) {
        const auto tag = static_cast<std::uint32_t>(a->frame.at(0));
        const std::uint64_t delay = (t + 1) - sent_at[tag];
        EXPECT_GE(delay, cfg.delay_min) << "tag " << tag;
        EXPECT_LE(delay, cfg.delay_max) << "tag " << tag;
        if (!first) {
          // Same arrival step, same node: earlier insertion first.
          EXPECT_LT(prev_tag, tag) << "at step " << t + 1;
        }
        prev_tag = tag;
        first = false;
        ++delivered;
      }
    }
  }
  EXPECT_EQ(delivered, 64u);  // no silent loss at zero fault rates
}

}  // namespace
}  // namespace s2d
