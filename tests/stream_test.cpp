#include "core/stream.h"

#include <gtest/gtest.h>

#include "adversary/adversaries.h"
#include "core/ghm.h"
#include "harness/runner.h"
#include "util/rng.h"

namespace s2d {
namespace {

constexpr double kEps = 1.0 / (1 << 16);

struct Fixture {
  DataLink link;
  Session session;
  StreamMux mux;

  explicit Fixture(std::uint64_t seed, double pressure = 0.1)
      : link(make_link(seed, pressure)), session(link), mux(session) {}

  static DataLink make_link(std::uint64_t seed, double pressure) {
    DataLinkConfig cfg;
    cfg.retry_every = 3;
    cfg.collect_deliveries = true;
    auto pair = make_ghm(GrowthPolicy::geometric(kEps), seed);
    return DataLink(std::move(pair.tm), std::move(pair.rm),
                    std::make_unique<RandomFaultAdversary>(
                        FaultProfile::chaos(pressure), Rng(seed + 1)),
                    cfg);
  }
};

TEST(StreamChunkFrame, RoundTrip) {
  using stream_internal::ChunkFrame;
  ChunkFrame f;
  f.stream_id = 7;
  f.chunk_index = 3;
  f.last = true;
  f.stream_crc = 0xdeadbeef;
  f.data = "chunk contents";
  const auto g = ChunkFrame::decode(f.encode());
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->stream_id, 7u);
  EXPECT_EQ(g->chunk_index, 3u);
  EXPECT_TRUE(g->last);
  EXPECT_EQ(g->stream_crc, 0xdeadbeefu);
  EXPECT_EQ(g->data, "chunk contents");
}

TEST(StreamChunkFrame, RejectsForeignPayloads) {
  using stream_internal::ChunkFrame;
  EXPECT_FALSE(ChunkFrame::decode("just some text").has_value());
  EXPECT_FALSE(ChunkFrame::decode("").has_value());
}

TEST(StreamMux, SmallStreamRoundTrip) {
  Fixture fx(1);
  Rng rng(2);
  const std::string data = make_payload(5000, rng);
  fx.mux.send(data, 512);
  ASSERT_TRUE(fx.session.pump_until_idle(2000000));
  const auto done = fx.mux.take_completed();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_TRUE(done[0].intact);
  EXPECT_EQ(done[0].data, data);
}

TEST(StreamMux, EmptyStreamIsValid) {
  Fixture fx(3);
  fx.mux.send("", 128);
  ASSERT_TRUE(fx.session.pump_until_idle(100000));
  const auto done = fx.mux.take_completed();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_TRUE(done[0].intact);
  EXPECT_TRUE(done[0].data.empty());
}

TEST(StreamMux, InterleavedStreamsReassembleIndependently) {
  Fixture fx(4);
  Rng rng(5);
  const std::string a = make_payload(2000, rng);
  const std::string b = make_payload(3000, rng);
  const auto id_a = fx.mux.send(a, 256);
  const auto id_b = fx.mux.send(b, 256);
  ASSERT_TRUE(fx.session.pump_until_idle(2000000));
  auto done = fx.mux.take_completed();
  ASSERT_EQ(done.size(), 2u);
  // Completion order follows the last chunk of each stream; sort by id.
  if (done[0].stream_id != id_a) std::swap(done[0], done[1]);
  EXPECT_EQ(done[0].stream_id, id_a);
  EXPECT_EQ(done[0].data, a);
  EXPECT_TRUE(done[0].intact);
  EXPECT_EQ(done[1].stream_id, id_b);
  EXPECT_EQ(done[1].data, b);
  EXPECT_TRUE(done[1].intact);
}

TEST(StreamMux, ChunkSizeOneSurvives) {
  Fixture fx(6);
  fx.mux.send("tiny", 1);
  ASSERT_TRUE(fx.session.pump_until_idle(500000));
  const auto done = fx.mux.take_completed();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].data, "tiny");
  EXPECT_TRUE(done[0].intact);
}

TEST(StreamMux, PartialStreamsVisibleMidFlight) {
  Fixture fx(7, 0.0);
  Rng rng(8);
  fx.mux.send(make_payload(4000, rng), 256);
  fx.session.pump(20);  // not enough to finish
  (void)fx.mux.take_completed();
  EXPECT_GE(fx.mux.partial_streams(), 0u);  // smoke: no crash mid-flight
  ASSERT_TRUE(fx.session.pump_until_idle(2000000));
  const auto done = fx.mux.take_completed();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(fx.mux.partial_streams(), 0u);
}

TEST(StreamMux, BinaryLikePayloadSurvives) {
  // Payloads are opaque: embedded NUL-ish characters and the chunk-tag
  // byte itself must travel intact.
  Fixture fx(9);
  std::string data;
  for (int i = 0; i < 1000; ++i) data.push_back(static_cast<char>(i % 256));
  fx.mux.send(data, 128);
  ASSERT_TRUE(fx.session.pump_until_idle(1000000));
  const auto done = fx.mux.take_completed();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].data, data);
  EXPECT_TRUE(done[0].intact);
}

TEST(StreamMux, HeavyChaosStillIntact) {
  Fixture fx(10, 0.25);
  Rng rng(11);
  const std::string data = make_payload(8000, rng);
  fx.mux.send(data, 200);
  ASSERT_TRUE(fx.session.pump_until_idle(5000000));
  const auto done = fx.mux.take_completed();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_TRUE(done[0].intact);
  EXPECT_EQ(done[0].data, data);
  EXPECT_TRUE(fx.link.checker().clean());
}

}  // namespace
}  // namespace s2d
