// Soundness tests for the TraceChecker itself: hand-crafted traces with
// known violations must be flagged, and violation-free traces must pass.
// The experiments' conclusions rest on this file.
#include "link/checker.h"

#include <gtest/gtest.h>

namespace s2d {
namespace {

TraceEvent send(std::uint64_t m) {
  return {.kind = ActionKind::kSendMsg, .msg_id = m};
}
TraceEvent ok() { return {.kind = ActionKind::kOk}; }
TraceEvent recv(std::uint64_t m) {
  return {.kind = ActionKind::kReceiveMsg, .msg_id = m};
}
TraceEvent crash_t() { return {.kind = ActionKind::kCrashT}; }
TraceEvent crash_r() { return {.kind = ActionKind::kCrashR}; }

TraceChecker check_all(std::initializer_list<TraceEvent> events) {
  TraceChecker c;
  for (const auto& e : events) c.on_event(e);
  return c;
}

TEST(Checker, CleanHandshakeSequence) {
  const auto c =
      check_all({send(1), recv(1), ok(), send(2), recv(2), ok()});
  EXPECT_TRUE(c.clean()) << c.violations().summary();
  EXPECT_EQ(c.oks(), 2u);
  EXPECT_EQ(c.deliveries(), 2u);
}

TEST(Checker, CausalityViolationOnUnsentMessage) {
  const auto c = check_all({send(1), recv(99)});
  EXPECT_EQ(c.violations().causality, 1u);
}

TEST(Checker, OrderViolationWhenOkWithoutDelivery) {
  const auto c = check_all({send(1), ok()});
  EXPECT_EQ(c.violations().order, 1u);
}

TEST(Checker, OrderViolationWhenDeliveryPrecedesSend) {
  // A delivery of m before its send is a causality violation; a later OK
  // must still see no delivery *after* the send.
  TraceChecker c;
  c.on_event(recv(1));
  c.on_event(send(1));
  c.on_event(ok());
  EXPECT_EQ(c.violations().causality, 1u);
  EXPECT_EQ(c.violations().order, 1u);
}

TEST(Checker, OkWithNothingInFlight) {
  const auto c = check_all({ok()});
  EXPECT_EQ(c.violations().order, 1u);
}

TEST(Checker, DuplicationViolation) {
  const auto c = check_all({send(1), recv(1), recv(1), ok()});
  EXPECT_EQ(c.violations().duplication, 1u);
}

TEST(Checker, DuplicationAllowedAcrossCrashR) {
  // §2.6: duplicates are excluded from the condition when a crash^R
  // intervenes — the receiver cannot remember what it already delivered.
  const auto c = check_all({send(1), recv(1), crash_r(), recv(1), ok()});
  EXPECT_EQ(c.violations().duplication, 0u);
}

TEST(Checker, TripleDeliveryCountsTwice) {
  const auto c = check_all({send(1), recv(1), recv(1), recv(1)});
  EXPECT_EQ(c.violations().duplication, 2u);
}

TEST(Checker, ReplayViolation) {
  // m1 completes (send, recv, OK); m2 is delivered (a boundary); then m1
  // is delivered again: a textbook replay.
  const auto c = check_all(
      {send(1), recv(1), ok(), send(2), recv(2), ok(), recv(1)});
  EXPECT_EQ(c.violations().replay, 1u);
}

TEST(Checker, ReplayAfterCrashRBoundary) {
  // The §3 attack shape: m1 completed, both stations crash, then the
  // adversary forces a re-delivery of m1.
  const auto c =
      check_all({send(1), recv(1), ok(), crash_r(), crash_t(), recv(1)});
  EXPECT_EQ(c.violations().replay, 1u);
}

TEST(Checker, AbortedMessageCountsForReplay) {
  // m1's transfer is cut short by crash^T (no OK) — m1 is still in
  // M_alpha ("followed by an OK or crash^T"), so a later re-delivery
  // after a boundary is a replay.
  const auto c =
      check_all({send(1), recv(1), crash_t(), send(2), recv(2), recv(1)});
  EXPECT_EQ(c.violations().replay, 1u);
}

TEST(Checker, RedeliveryWithoutBoundaryIsDuplicationNotReplay) {
  const auto c = check_all({send(1), recv(1), ok(), recv(1)});
  // The second recv(1) follows a boundary (the first recv(1)) and m1
  // completed before... wait: m1's OK (completion) happened *after* the
  // boundary event recv(1), so the no-replay condition is not violated;
  // the duplication condition is.
  EXPECT_EQ(c.violations().replay, 0u);
  EXPECT_EQ(c.violations().duplication, 1u);
}

TEST(Checker, FreshDeliveryAfterCrashesIsClean) {
  const auto c = check_all(
      {send(1), recv(1), ok(), crash_t(), crash_r(), send(2), recv(2), ok()});
  EXPECT_TRUE(c.clean()) << c.violations().summary();
}

TEST(Checker, Axiom1ViolationDetected) {
  const auto c = check_all({send(1), send(2)});
  EXPECT_EQ(c.violations().axiom, 1u);
}

TEST(Checker, Axiom1SatisfiedByCrash) {
  const auto c = check_all({send(1), crash_t(), send(2)});
  EXPECT_EQ(c.violations().axiom, 0u);
}

TEST(Checker, Axiom2ViolationDetected) {
  const auto c = check_all({send(1), ok(), send(1)});
  // ok() without delivery also flags order; we only assert the axiom here.
  EXPECT_EQ(c.violations().axiom, 1u);
}

TEST(Checker, AbortedThenNothingIsClean) {
  const auto c = check_all({send(1), crash_t(), send(2), recv(2), ok()});
  EXPECT_TRUE(c.clean()) << c.violations().summary();
}

TEST(Checker, DuplicateStraddlingCrashRIsLegalButThirdCopyIsNot) {
  // §2.6 no-duplication quantifies over intervals with no crash^R strictly
  // between the two deliveries. A crash^R between copies one and two
  // excuses that pair — but copies two and three have no crash between
  // them, so the third delivery is a violation again.
  const auto c = check_all(
      {send(1), recv(1), crash_r(), recv(1), recv(1)});
  EXPECT_EQ(c.violations().duplication, 1u);
}

TEST(Checker, CrashRBetweenEachPairExcusesEveryDuplicate) {
  const auto c = check_all(
      {send(1), recv(1), crash_r(), recv(1), crash_r(), recv(1)});
  EXPECT_EQ(c.violations().duplication, 0u);
}

TEST(Checker, CrashTCompletionThenCrashRBoundaryMakesRedeliveryAReplay) {
  // crash^T "completes" the in-flight m1 — it joins M_alpha without an OK
  // — and the subsequent crash^R is a boundary after that completion, so
  // re-delivering m1 violates no-replay. The crash^R simultaneously
  // excuses the duplication condition: this is a *pure* replay.
  const auto c =
      check_all({send(1), recv(1), crash_t(), crash_r(), recv(1)});
  EXPECT_EQ(c.violations().replay, 1u);
  EXPECT_EQ(c.violations().duplication, 0u);
}

TEST(Checker, RedeliveryRightAfterCrashTIsDuplicationNotReplay) {
  // Without a boundary (receive_msg or crash^R) *after* the crash^T
  // completion, the no-replay condition cannot fire: the last boundary is
  // the first recv(1), and m1 completed after it. The re-delivery is
  // ordinary duplication instead.
  const auto c = check_all({send(1), recv(1), crash_t(), recv(1)});
  EXPECT_EQ(c.violations().replay, 0u);
  EXPECT_EQ(c.violations().duplication, 1u);
}

TEST(Checker, SummaryMentionsAllCounters) {
  ViolationCounts v;
  v.order = 2;
  const std::string s = v.summary();
  EXPECT_NE(s.find("order=2"), std::string::npos);
  EXPECT_NE(s.find("replay=0"), std::string::npos);
}

TEST(Checker, SafetyTotalSums) {
  ViolationCounts v;
  v.causality = 1;
  v.order = 2;
  v.duplication = 3;
  v.replay = 4;
  v.axiom = 5;
  EXPECT_EQ(v.safety_total(), 10u);
}

}  // namespace
}  // namespace s2d
