#include "link/channel.h"

#include <gtest/gtest.h>

namespace s2d {
namespace {

Bytes bytes_of(std::initializer_list<int> xs) {
  Bytes out;
  for (int x : xs) out.push_back(static_cast<std::byte>(x));
  return out;
}

TEST(Channel, SendAssignsSequentialIds) {
  Channel c("t");
  EXPECT_EQ(c.send(bytes_of({1}), 0), 0u);
  EXPECT_EQ(c.send(bytes_of({2}), 1), 1u);
  EXPECT_EQ(c.send(bytes_of({3}), 2), 2u);
  EXPECT_EQ(c.packets_sent(), 3u);
}

TEST(Channel, PayloadLookupReturnsExactBytes) {
  Channel c("t");
  const Bytes payload = bytes_of({10, 20, 30});
  const PacketId id = c.send(payload, 5);
  const auto got = c.payload(id);
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(std::equal(got->begin(), got->end(), payload.begin(),
                         payload.end()));
}

TEST(Channel, UnknownIdReturnsNothing) {
  Channel c("t");
  EXPECT_FALSE(c.payload(0).has_value());
  c.send(bytes_of({1}), 0);
  EXPECT_TRUE(c.payload(0).has_value());
  EXPECT_FALSE(c.payload(1).has_value());
}

TEST(Channel, PacketsRetainedForever) {
  // §2.3: a sent packet can be delivered any number of times, arbitrarily
  // later — the store must never forget.
  Channel c("t");
  const PacketId id = c.send(bytes_of({7}), 0);
  for (int i = 0; i < 1000; ++i) c.send(bytes_of({i & 0xff}), 1);
  const auto got = c.payload(id);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ((*got)[0], std::byte{7});
}

TEST(Channel, HistoryExposesOnlyMetadata) {
  Channel c("t");
  c.send(bytes_of({1, 2, 3}), 9);
  const auto& h = c.history();
  ASSERT_EQ(h.size(), 1u);
  EXPECT_EQ(h[0].id, 0u);
  EXPECT_EQ(h[0].length, 3u);
  EXPECT_EQ(h[0].sent_step, 9u);
}

TEST(Channel, LengthQuery) {
  Channel c("t");
  c.send(bytes_of({1, 2, 3, 4}), 0);
  EXPECT_EQ(c.length(0), 4u);
  EXPECT_EQ(c.length(99), 0u);
}

TEST(Channel, StatsAccumulate) {
  Channel c("t");
  c.send(bytes_of({1, 2}), 0);
  c.send(bytes_of({3, 4, 5}), 0);
  EXPECT_EQ(c.bytes_sent(), 5u);
  EXPECT_EQ(c.deliveries(), 0u);
  c.note_delivery();
  c.note_delivery();
  EXPECT_EQ(c.deliveries(), 2u);
}

}  // namespace
}  // namespace s2d
