#include "link/channel.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.h"

namespace s2d {
namespace {

Bytes bytes_of(std::initializer_list<int> xs) {
  Bytes out;
  for (int x : xs) out.push_back(static_cast<std::byte>(x));
  return out;
}

TEST(Channel, SendAssignsSequentialIds) {
  PayloadArena arena;
  Channel c(Dir::kTR, nullptr, &arena);
  EXPECT_EQ(c.send(bytes_of({1}), 0), 0u);
  EXPECT_EQ(c.send(bytes_of({2}), 1), 1u);
  EXPECT_EQ(c.send(bytes_of({3}), 2), 2u);
  EXPECT_EQ(c.packets_sent(), 3u);
}

TEST(Channel, PayloadLookupReturnsExactBytes) {
  PayloadArena arena;
  Channel c(Dir::kTR, nullptr, &arena);
  const Bytes payload = bytes_of({10, 20, 30});
  const PacketId id = c.send(payload, 5);
  const auto got = c.payload(id);
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(std::equal(got->begin(), got->end(), payload.begin(),
                         payload.end()));
}

TEST(Channel, UnknownIdReturnsNothing) {
  PayloadArena arena;
  Channel c(Dir::kTR, nullptr, &arena);
  EXPECT_FALSE(c.payload(0).has_value());
  c.send(bytes_of({1}), 0);
  EXPECT_TRUE(c.payload(0).has_value());
  EXPECT_FALSE(c.payload(1).has_value());
}

TEST(Channel, PacketsRetainedForever) {
  // §2.3: a sent packet can be delivered any number of times, arbitrarily
  // later — the store must never forget.
  PayloadArena arena;
  Channel c(Dir::kTR, nullptr, &arena);
  const PacketId id = c.send(bytes_of({7}), 0);
  for (int i = 0; i < 1000; ++i) c.send(bytes_of({i & 0xff}), 1);
  const auto got = c.payload(id);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ((*got)[0], std::byte{7});
}

TEST(Channel, HistoryExposesOnlyMetadata) {
  PayloadArena arena;
  Channel c(Dir::kTR, nullptr, &arena);
  c.send(bytes_of({1, 2, 3}), 9);
  const auto& h = c.history();
  ASSERT_EQ(h.size(), 1u);
  EXPECT_EQ(h[0].id, 0u);
  EXPECT_EQ(h[0].length, 3u);
  EXPECT_EQ(h[0].sent_step, 9u);
}

TEST(Channel, LengthQuery) {
  PayloadArena arena;
  Channel c(Dir::kTR, nullptr, &arena);
  c.send(bytes_of({1, 2, 3, 4}), 0);
  EXPECT_EQ(c.length(0), 4u);
  EXPECT_EQ(c.length(99), 0u);
}

TEST(Channel, UnknownIdConsistentAcrossLengthAndPayload) {
  // Regression for the unknown-id contract: length() and payload() must
  // never disagree about whether a packet exists. An unknown id is a
  // documented no-op (payload nullopt, length 0) — the executor relies on
  // this to neutralise buggy adversaries without a crash.
  PayloadArena arena;
  Channel c(Dir::kTR, nullptr, &arena);
  for (PacketId id : {PacketId{0}, PacketId{1}, PacketId{1000}}) {
    EXPECT_FALSE(c.payload(id).has_value()) << id;
    EXPECT_EQ(c.length(id), 0u) << id;
  }
  c.send(bytes_of({1, 2}), 0);
  EXPECT_TRUE(c.payload(0).has_value());
  EXPECT_EQ(c.length(0), 2u);
  EXPECT_FALSE(c.payload(1).has_value());
  EXPECT_EQ(c.length(1), 0u);
  // The documented ambiguity: a zero-length packet exists (payload engaged)
  // but is indistinguishable from unknown via length() alone.
  const PacketId empty_id = c.send(Bytes{}, 1);
  ASSERT_TRUE(c.payload(empty_id).has_value());
  EXPECT_TRUE(c.payload(empty_id)->empty());
  EXPECT_EQ(c.length(empty_id), 0u);
}

TEST(Channel, IdenticalPayloadsInternedOnce) {
  PayloadArena arena;
  Channel c(Dir::kTR, nullptr, &arena);
  const Bytes pkt = bytes_of({9, 8, 7, 6});
  const PacketId a = c.send(pkt, 0);
  const PacketId b = c.send(pkt, 1);
  EXPECT_EQ(c.bytes_sent(), 8u);
  EXPECT_EQ(c.bytes_stored(), 4u);  // retransmission stored for free
  EXPECT_EQ(c.interned_sends(), 1u);
  // Same storage, and both ids still resolve to the exact bytes.
  EXPECT_EQ(c.payload(a)->data(), c.payload(b)->data());
  EXPECT_TRUE(std::equal(c.payload(b)->begin(), c.payload(b)->end(),
                         pkt.begin(), pkt.end()));
}

TEST(Channel, PayloadSpansStableAcrossArenaGrowth) {
  // Spans handed out must survive arbitrary later traffic, including
  // payloads larger than an arena chunk (dedicated-chunk path).
  PayloadArena arena;
  Channel c(Dir::kTR, nullptr, &arena);
  const PacketId first = c.send(bytes_of({42, 43}), 0);
  const auto before = *c.payload(first);
  const Bytes big(100 * 1024, std::byte{5});  // > one 64KiB chunk
  c.send(big, 1);
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    Bytes p(1 + rng.next_below(40));
    for (auto& x : p) x = static_cast<std::byte>(rng.next_u64() & 0xff);
    c.send(p, 2);
  }
  const auto after = *c.payload(first);
  EXPECT_EQ(before.data(), after.data());
  ASSERT_EQ(after.size(), 2u);
  EXPECT_EQ(after[0], std::byte{42});
  EXPECT_EQ(after[1], std::byte{43});
  const auto big_back = *c.payload(1);
  ASSERT_EQ(big_back.size(), big.size());
  EXPECT_TRUE(std::equal(big_back.begin(), big_back.end(), big.begin()));
}

TEST(Channel, StatsAccumulate) {
  PayloadArena arena;
  Channel c(Dir::kTR, nullptr, &arena);
  c.send(bytes_of({1, 2}), 0);
  c.send(bytes_of({3, 4, 5}), 0);
  EXPECT_EQ(c.bytes_sent(), 5u);
  EXPECT_EQ(c.deliveries(), 0u);
  c.note_delivery(0);
  c.note_delivery(0);
  EXPECT_EQ(c.deliveries(), 2u);
}

}  // namespace
}  // namespace s2d
