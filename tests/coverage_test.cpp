// Coverage map + coverage-guided fuzzing (obs/coverage.h,
// harness/fuzzer.h): the bitmap must be a pure function of the event
// stream (order-sensitive, observer-independent, OR-mergeable in any
// grouping), and the coverage-guided fuzzer modes must honour the same
// determinism contract as the blind sampler — byte-identical reports at
// any shard count — while reaching strictly more coverage than blind
// sampling at an equal budget.
#include "obs/coverage.h"

#include <gtest/gtest.h>

#include "adversary/adversaries.h"
#include "harness/fuzzer.h"
#include "harness/systems.h"
#include "obs/ring_sink.h"
#include "util/rng.h"

namespace s2d {
namespace {

Event make_event(EventKind kind, std::uint8_t detail = 0) {
  Event ev;
  ev.kind = kind;
  ev.detail = detail;
  return ev;
}

TEST(CoverageMap, AddReportsNovelty) {
  CoverageMap map;
  EXPECT_EQ(map.popcount(), 0u);
  EXPECT_TRUE(map.add(42));
  EXPECT_FALSE(map.add(42));  // second set of the same bit is not novel
  EXPECT_TRUE(map.test(42));
  EXPECT_FALSE(map.test(43));
  EXPECT_EQ(map.popcount(), 1u);
  map.clear();
  EXPECT_EQ(map.popcount(), 0u);
  EXPECT_FALSE(map.test(42));
}

TEST(CoverageMap, MergeIsCommutativeAndCountsNewBits) {
  CoverageMap a;
  CoverageMap b;
  Rng rng(7);
  for (int i = 0; i < 200; ++i) a.add(rng.next_u64());
  for (int i = 0; i < 200; ++i) b.add(rng.next_u64());

  CoverageMap ab = a;
  CoverageMap ba = b;
  const std::size_t new_in_ab = ab.merge_count_new(b);
  ba.merge(a);
  EXPECT_EQ(ab, ba);
  EXPECT_EQ(ab.fingerprint(), ba.fingerprint());
  EXPECT_EQ(new_in_ab, a.count_new(b));  // count_new is the dry run
  EXPECT_EQ(ab.popcount(), a.popcount() + new_in_ab);
  // Merging again adds nothing: novelty is monotone.
  EXPECT_EQ(ab.merge_count_new(b), 0u);
}

TEST(CoverageMap, TokenSeparatesKindAndDetail) {
  const Event reject_a = make_event(EventKind::kPacketReject, 1);
  const Event reject_b = make_event(EventKind::kPacketReject, 2);
  const Event accept = make_event(EventKind::kPacketAccept, 1);
  EXPECT_NE(coverage_token(reject_a), coverage_token(reject_b));
  EXPECT_NE(coverage_token(reject_a), coverage_token(accept));
}

TEST(CoverageSink, OrderOfEventsChangesTheBitmap) {
  const Event a = make_event(EventKind::kPacketAccept);
  const Event b = make_event(EventKind::kPacketReject, 1);

  CoverageMap ab_map;
  CoverageMap ba_map;
  {
    CoverageSink sink(&ab_map);
    sink.on_event(a);
    sink.on_event(b);
  }
  {
    CoverageSink sink(&ba_map);
    sink.on_event(b);
    sink.on_event(a);
  }
  // Same unigrams, different bigrams: order is part of coverage.
  EXPECT_NE(ab_map, ba_map);
  EXPECT_GT(ab_map.popcount(), 2u);  // 2 unigrams + at least the bigram
}

TEST(CoverageSink, TickEventsAreMaskedOut) {
  CoverageMap map;
  CoverageSink sink(&map);
  sink.on_event(make_event(EventKind::kStep));
  sink.on_event(make_event(EventKind::kStateSample));
  EXPECT_EQ(map.popcount(), 0u);
}

TEST(CoverageSink, ResetWindowSplitsNGramsButKeepsBits) {
  const Event a = make_event(EventKind::kPacketAccept);
  const Event b = make_event(EventKind::kPacketReject, 1);

  CoverageMap joined;
  CoverageMap split;
  {
    CoverageSink sink(&joined);
    sink.on_event(a);
    sink.on_event(b);
  }
  {
    CoverageSink sink(&split);
    sink.on_event(a);
    sink.reset_window();  // a new script begins: no cross-script bigram
    sink.on_event(b);
  }
  EXPECT_LT(split.popcount(), joined.popcount());
}

TEST(Coverage, ReplayingTheSameScriptYieldsTheSameBitmap) {
  const SeededSystem system = make_seeded_system("abp");
  FuzzerConfig cfg;
  cfg.depth = 50;

  CoverageMap first;
  CoverageMap second;
  {
    CoverageSink sink(&first);
    (void)fuzz_script(system(11), 11, cfg, &sink);
  }
  {
    CoverageSink sink(&second);
    (void)fuzz_script(system(11), 11, cfg, &sink);
  }
  EXPECT_EQ(first, second);
  EXPECT_GT(first.popcount(), 0u);
}

TEST(Coverage, BitmapIsIdenticalWithAndWithoutATraceSinkAttached) {
  // Observation must not perturb coverage: a RingTraceSink listening on
  // the same bus leaves the coverage bitmap byte-identical.
  const SeededSystem system = make_seeded_system("fixed_nonce");
  FuzzerConfig cfg;
  cfg.depth = 60;
  const FuzzRun probe = fuzz_script(system(5), 5, cfg);
  ASSERT_FALSE(probe.script.empty());

  const auto run_with = [&](bool with_ring) {
    CoverageMap map;
    CoverageSink cov(&map);
    RingTraceSink ring(32);
    DataLink link =
        system(5)(std::make_unique<ScriptedAdversary>(probe.script));
    if (with_ring) link.bus().attach(&ring);
    link.bus().attach(&cov);
    (void)drive_script_workload(link, probe.script.size(), cfg.workload,
                                /*stop_on_violation=*/true);
    link.bus().detach(&cov);
    if (with_ring) link.bus().detach(&ring);
    return map;
  };
  EXPECT_EQ(run_with(false), run_with(true));
}

TEST(Coverage, GuidedModesAreDeterministicAcrossShardCounts) {
  for (const FuzzMode mode : {FuzzMode::kCoverage, FuzzMode::kAdaptive}) {
    FuzzerConfig cfg;
    cfg.scripts = 200;
    cfg.depth = 50;
    cfg.root_seed = 20260808;
    cfg.mode = mode;
    cfg.round_size = 32;

    cfg.threads = 1;
    const FuzzReport serial = run_fuzz(make_seeded_system("abp"), cfg);
    cfg.threads = 3;
    const FuzzReport three = run_fuzz(make_seeded_system("abp"), cfg);
    cfg.threads = 0;  // all hardware threads
    const FuzzReport all = run_fuzz(make_seeded_system("abp"), cfg);

    EXPECT_EQ(serial.fingerprint(), three.fingerprint())
        << fuzz_mode_name(mode);
    EXPECT_EQ(serial.fingerprint(), all.fingerprint())
        << fuzz_mode_name(mode);
    EXPECT_EQ(serial.coverage, three.coverage) << fuzz_mode_name(mode);
    EXPECT_EQ(serial.corpus_kept, three.corpus_kept)
        << fuzz_mode_name(mode);
    EXPECT_EQ(serial.coverage_bits, serial.coverage.popcount())
        << fuzz_mode_name(mode);
    EXPECT_GT(serial.rounds, 0u) << fuzz_mode_name(mode);
  }
}

TEST(Coverage, FixedModeFingerprintIsUnchangedByCoverageCollection) {
  // kFixed collects coverage too, but the schedules themselves must be
  // exactly the blind sampler's: same findings at any shard count.
  FuzzerConfig cfg;
  cfg.scripts = 150;
  cfg.depth = 40;
  cfg.root_seed = 99;
  cfg.threads = 1;
  const FuzzReport a = run_fuzz(make_seeded_system("stopwait"), cfg);
  cfg.threads = 4;
  const FuzzReport b = run_fuzz(make_seeded_system("stopwait"), cfg);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a.coverage, b.coverage);
  EXPECT_EQ(a.rounds, 0u);       // no rounds in fixed mode
  EXPECT_EQ(a.corpus_kept, 0u);  // no corpus either
}

TEST(Coverage, GuidanceReachesMoreBitsThanBlindSamplingAtEqualBudget) {
  // The tentpole claim, at a small budget: mutating coverage survivors
  // explores more of the event-n-gram taxonomy than drawing every script
  // fresh from the same weights.
  FuzzerConfig cfg;
  cfg.scripts = 300;
  cfg.depth = 80;
  cfg.root_seed = 1989;
  cfg.threads = 0;

  cfg.mode = FuzzMode::kFixed;
  const FuzzReport fixed = run_fuzz(make_seeded_system("ghm"), cfg);
  cfg.mode = FuzzMode::kCoverage;
  const FuzzReport guided = run_fuzz(make_seeded_system("ghm"), cfg);

  EXPECT_GT(guided.coverage_bits, fixed.coverage_bits);
  EXPECT_GT(guided.corpus_kept, 0u);
}

}  // namespace
}  // namespace s2d
