#include "util/bitstring.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_set>
#include <vector>

#include "util/rng.h"

namespace s2d {
namespace {

TEST(BitString, EmptyBasics) {
  BitString b;
  EXPECT_EQ(b.size(), 0u);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.to_binary(), "");
  EXPECT_EQ(b, BitString());
}

TEST(BitString, FromBinaryRoundTrip) {
  const std::string pattern = "0110100111010001";
  BitString b = BitString::from_binary(pattern);
  EXPECT_EQ(b.size(), pattern.size());
  EXPECT_EQ(b.to_binary(), pattern);
}

TEST(BitString, PushBackBuildsInOrder) {
  BitString b;
  b.push_back(true);
  b.push_back(false);
  b.push_back(true);
  EXPECT_EQ(b.to_binary(), "101");
  EXPECT_TRUE(b.bit(0));
  EXPECT_FALSE(b.bit(1));
  EXPECT_TRUE(b.bit(2));
}

TEST(BitString, PushBackAcrossWordBoundary) {
  BitString b;
  std::string expect;
  for (int i = 0; i < 200; ++i) {
    const bool v = (i % 3) == 0;
    b.push_back(v);
    expect.push_back(v ? '1' : '0');
  }
  EXPECT_EQ(b.size(), 200u);
  EXPECT_EQ(b.to_binary(), expect);
}

TEST(BitString, AppendMatchesStringConcat) {
  BitString a = BitString::from_binary("1101");
  BitString b = BitString::from_binary("0011");
  BitString c = a.concat(b);
  EXPECT_EQ(c.to_binary(), "11010011");
  a.append(b);
  EXPECT_EQ(a, c);
}

TEST(BitString, AppendAtWordBoundaryFastPath) {
  Rng rng(7);
  BitString a = BitString::random(128, rng);  // exactly two words
  BitString b = BitString::random(70, rng);
  const std::string expect = a.to_binary() + b.to_binary();
  a.append(b);
  EXPECT_EQ(a.to_binary(), expect);
}

TEST(BitString, AppendEmptyIsIdentity) {
  BitString a = BitString::from_binary("10101");
  BitString copy = a;
  a.append(BitString{});
  EXPECT_EQ(a, copy);
  BitString empty;
  empty.append(copy);
  EXPECT_EQ(empty, copy);
}

TEST(BitString, PrefixReflexive) {
  Rng rng(11);
  const BitString a = BitString::random(77, rng);
  EXPECT_TRUE(a.is_prefix_of(a));
  EXPECT_TRUE(a.comparable(a));
}

TEST(BitString, EmptyIsPrefixOfEverything) {
  Rng rng(12);
  const BitString a = BitString::random(9, rng);
  EXPECT_TRUE(BitString().is_prefix_of(a));
  EXPECT_FALSE(a.is_prefix_of(BitString()));
}

TEST(BitString, PrefixDetectsExtension) {
  BitString a = BitString::from_binary("1100");
  BitString b = a.concat(BitString::from_binary("01"));
  EXPECT_TRUE(a.is_prefix_of(b));
  EXPECT_FALSE(b.is_prefix_of(a));
  EXPECT_TRUE(a.comparable(b));
  EXPECT_TRUE(b.comparable(a));
}

TEST(BitString, IncomparableStrings) {
  BitString a = BitString::from_binary("1100");
  BitString b = BitString::from_binary("1010");
  EXPECT_FALSE(a.is_prefix_of(b));
  EXPECT_FALSE(b.is_prefix_of(a));
  EXPECT_FALSE(a.comparable(b));
}

TEST(BitString, SameLengthPrefixIsEquality) {
  // For equal lengths, "is a prefix of" must coincide with equality —
  // the receiver's wrong-packet rule depends on this.
  Rng rng(13);
  const BitString a = BitString::random(100, rng);
  BitString b = a;
  EXPECT_TRUE(a.is_prefix_of(b));
  b = BitString::random(100, rng);
  ASSERT_NE(a, b);
  EXPECT_FALSE(a.is_prefix_of(b));
}

TEST(BitString, PrefixAcrossWordBoundaries) {
  Rng rng(14);
  const BitString a = BitString::random(300, rng);
  for (std::size_t n : {0u, 1u, 63u, 64u, 65u, 128u, 299u, 300u}) {
    EXPECT_TRUE(a.prefix(n).is_prefix_of(a)) << n;
    EXPECT_EQ(a.prefix(n).size(), n);
  }
}

TEST(BitString, PrefixMethodMatchesToBinary) {
  Rng rng(15);
  const BitString a = BitString::random(150, rng);
  const std::string s = a.to_binary();
  EXPECT_EQ(a.prefix(71).to_binary(), s.substr(0, 71));
}

TEST(BitString, SuffixMatchesToBinary) {
  Rng rng(16);
  const BitString a = BitString::random(150, rng);
  const std::string s = a.to_binary();
  EXPECT_EQ(a.suffix(40).to_binary(), s.substr(150 - 40));
  EXPECT_EQ(a.suffix(0).size(), 0u);
  EXPECT_EQ(a.suffix(150), a);
}

TEST(BitString, RandomHasExactLength) {
  Rng rng(17);
  for (std::size_t n : {1u, 5u, 63u, 64u, 65u, 129u, 1000u}) {
    EXPECT_EQ(BitString::random(n, rng).size(), n);
  }
}

TEST(BitString, RandomZeroBits) {
  Rng rng(18);
  EXPECT_EQ(BitString::random(0, rng), BitString());
}

TEST(BitString, RandomIsRoughlyBalanced) {
  Rng rng(19);
  const BitString a = BitString::random(10000, rng);
  std::size_t ones = 0;
  for (std::size_t i = 0; i < a.size(); ++i) ones += a.bit(i) ? 1u : 0u;
  EXPECT_GT(ones, 4700u);
  EXPECT_LT(ones, 5300u);
}

TEST(BitString, RandomCollisionsAreRare) {
  Rng rng(20);
  std::set<std::string> seen;
  for (int i = 0; i < 2000; ++i) {
    seen.insert(BitString::random(64, rng).to_binary());
  }
  EXPECT_EQ(seen.size(), 2000u);  // 2000 draws of 64 bits never collide
}

TEST(BitString, OrderingIsStrictTotalOrder) {
  BitString a = BitString::from_binary("0");
  BitString b = BitString::from_binary("00");
  BitString c = BitString::from_binary("1");
  EXPECT_LT(a, b);  // prefix sorts first
  EXPECT_LT(b, c);
  EXPECT_LT(a, c);
  EXPECT_EQ(a <=> a, std::strong_ordering::equal);
}

TEST(BitString, HashDistinguishesLengths) {
  // "0" and "00" share word content; length must feed the hash.
  BitString a = BitString::from_binary("0");
  BitString b = BitString::from_binary("00");
  EXPECT_NE(a, b);
  EXPECT_NE(a.hash(), b.hash());
}

TEST(BitString, UnorderedSetUsable) {
  Rng rng(21);
  std::unordered_set<BitString> set;
  std::vector<BitString> values;
  for (int i = 0; i < 100; ++i) values.push_back(BitString::random(90, rng));
  for (const auto& v : values) set.insert(v);
  EXPECT_EQ(set.size(), 100u);
  for (const auto& v : values) EXPECT_TRUE(set.contains(v));
}

TEST(BitString, FromWordsRoundTrip) {
  Rng rng(22);
  const BitString a = BitString::random(130, rng);
  const BitString b = BitString::from_words(a.words(), a.size());
  EXPECT_EQ(a, b);
}

TEST(BitString, TryFromWordsRejectsMalformedInput) {
  // Wrong word count for the bit length.
  const std::uint64_t one[] = {1};
  EXPECT_FALSE(BitString::try_from_words(one, 65).has_value());
  const std::uint64_t two[] = {1, 0};
  EXPECT_FALSE(BitString::try_from_words(two, 64).has_value());
  // Nonzero padding bits above nbits violate the class invariant and must
  // be rejected, not silently masked: a forged packet could otherwise
  // smuggle two different word images of the same logical string past
  // equality/hashing.
  const std::uint64_t padded[] = {std::uint64_t{1} << 10};
  EXPECT_FALSE(BitString::try_from_words(padded, 10).has_value());
  const std::uint64_t ok[] = {(std::uint64_t{1} << 10) - 1};
  const auto got = BitString::try_from_words(ok, 10);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->to_binary(), "1111111111");
  // Empty is fine.
  EXPECT_TRUE(BitString::try_from_words({}, 0).has_value());
}

TEST(BitString, PrefixSuffixAtWordBoundaries) {
  // 63/64/65 bits straddle the word boundary — the shift paths differ.
  Rng rng(24);
  const BitString a = BitString::random(130, rng);
  const std::string s = a.to_binary();
  for (std::size_t n : {0u, 1u, 63u, 64u, 65u, 127u, 128u, 129u, 130u}) {
    EXPECT_EQ(a.prefix(n).to_binary(), s.substr(0, n)) << n;
    EXPECT_EQ(a.suffix(n).to_binary(), s.substr(s.size() - n)) << n;
    EXPECT_TRUE(a.prefix(n).is_prefix_of(a)) << n;
  }
}

TEST(BitString, InlineToHeapTransitionPreservesContent) {
  // Growing past the 128-bit small buffer must not disturb existing bits,
  // and values must round-trip through copies/moves in both storage modes.
  Rng rng(25);
  BitString a = BitString::random(128, rng);  // exactly fills the SBO
  const std::string small = a.to_binary();
  a.append(BitString::random(1, rng));  // forces the heap transition
  EXPECT_EQ(a.to_binary().substr(0, 128), small);
  EXPECT_EQ(a.size(), 129u);

  const BitString heap_copy = a;  // heap -> fresh object
  EXPECT_EQ(heap_copy, a);
  BitString small_val = BitString::random(7, rng);
  const std::string small_bits = small_val.to_binary();
  BitString stolen = std::move(a);  // heap move
  EXPECT_EQ(stolen, heap_copy);
  stolen = small_val;  // heap object assigned a small value
  EXPECT_EQ(stolen.to_binary(), small_bits);
  // Move-assign from an inline source copies instead of stealing (keeps
  // the destination's capacity warm, never allocates) — the source keeps
  // its value.
  stolen = std::move(small_val);
  EXPECT_EQ(stolen.to_binary(), small_bits);
  EXPECT_EQ(small_val.to_binary(), small_bits);  // NOLINT(bugprone-use-after-move)

  // clear() + reuse keeps the invariant (padding words re-zeroed).
  stolen = heap_copy;
  stolen.clear();
  EXPECT_EQ(stolen.size(), 0u);
  stolen.append_bits(0b101u, 3);
  EXPECT_EQ(stolen.to_binary(), "101");
  EXPECT_EQ(stolen, BitString::from_binary("101"));
  EXPECT_EQ(stolen.hash(), BitString::from_binary("101").hash());
}

TEST(BitString, AppendRandomMatchesRandomStream) {
  // append_random must consume the RNG exactly like BitString::random so
  // seeded executions stay replayable across the in-place refactor.
  for (std::size_t n : {1u, 63u, 64u, 65u, 200u}) {
    Rng r1(42), r2(42);
    BitString grown;
    grown.append_random(n, r1);
    EXPECT_EQ(grown, BitString::random(n, r2)) << n;
    EXPECT_EQ(r1.next_u64(), r2.next_u64()) << n;  // streams stay in sync
  }
  // Appending in two chunks equals the bits of two sequential draws.
  Rng r1(43), r2(43);
  BitString two_step;
  two_step.append_random(70, r1);
  two_step.append_random(30, r1);
  BitString a = BitString::random(70, r2);
  a.append(BitString::random(30, r2));
  EXPECT_EQ(two_step, a);
}

// ---------------------------------------------------------------------
// Property tests pinning the whole-word fast paths (is_prefix_of,
// comparable, operator<=>) against scalar bit-by-bit references built on
// bit(). The fast paths scan 64-bit words with an unmasked compare over
// full words (padding invariant) plus a masked tail; the references below
// are too slow to ship but obviously correct. Lengths are drawn to
// straddle the 128-bit small-buffer boundary and to hit every word-tail
// offset (len mod 64 = 0..63), including heap-spilled strings.
// ---------------------------------------------------------------------

bool prefix_ref(const BitString& a, const BitString& b) {
  if (a.size() > b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.bit(i) != b.bit(i)) return false;
  }
  return true;
}

bool comparable_ref(const BitString& a, const BitString& b) {
  return prefix_ref(a, b) || prefix_ref(b, a);
}

std::strong_ordering ordering_ref(const BitString& a, const BitString& b) {
  const std::size_t common = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (a.bit(i) != b.bit(i)) {
      return static_cast<int>(a.bit(i)) <=> static_cast<int>(b.bit(i));
    }
  }
  return a.size() <=> b.size();
}

/// Lengths covering every tail offset around each word boundary up to one
/// word past the 128-bit inline capacity: 0..2 near 0/64/128/192 plus the
/// full 0..63 offset sweep in the third word.
std::vector<std::size_t> boundary_lengths() {
  std::vector<std::size_t> lens;
  for (std::size_t base : {std::size_t{0}, std::size_t{64}, std::size_t{128},
                           std::size_t{192}}) {
    for (std::size_t d = 0; d <= 2; ++d) {
      if (base + d > 0) lens.push_back(base + d);
      if (base >= d && base - d > 0) lens.push_back(base - d);
    }
  }
  for (std::size_t off = 0; off < 64; ++off) lens.push_back(128 + off);
  return lens;
}

TEST(BitStringProperty, PrefixAndComparableMatchScalarReference) {
  Rng rng(0x5ca1a);
  for (const std::size_t la : boundary_lengths()) {
    const BitString a = BitString::random(la, rng);
    // Related strings: a genuine extension of `a` (comparable), a copy
    // with one flipped bit (incomparable once past the flip), and an
    // independent random string of a nearby length.
    BitString ext = a;
    ext.append_random(1 + la % 67, rng);
    BitString indep = BitString::random(la ? la - la / 3 : 5, rng);
    std::vector<BitString> others{a, ext, indep};
    if (la > 0) {
      const std::size_t flip = rng.next_u64() % la;
      BitString mut;
      for (std::size_t i = 0; i < la; ++i) {
        mut.push_back(i == flip ? !a.bit(i) : a.bit(i));
      }
      mut.append_random(la % 13, rng);
      others.push_back(std::move(mut));
    }
    for (const BitString& b : others) {
      EXPECT_EQ(a.is_prefix_of(b), prefix_ref(a, b))
          << "la=" << la << " lb=" << b.size();
      EXPECT_EQ(b.is_prefix_of(a), prefix_ref(b, a))
          << "la=" << la << " lb=" << b.size();
      EXPECT_EQ(a.comparable(b), comparable_ref(a, b))
          << "la=" << la << " lb=" << b.size();
      EXPECT_EQ(b.comparable(a), comparable_ref(b, a))
          << "la=" << la << " lb=" << b.size();
    }
  }
}

TEST(BitStringProperty, OrderingMatchesScalarReference) {
  Rng rng(0x0d0e5);
  for (const std::size_t la : boundary_lengths()) {
    const BitString a = BitString::random(la, rng);
    BitString ext = a;
    ext.append_random(1 + la % 31, rng);
    // A near-twin differing in exactly the last bit isolates the masked
    // tail-word compare.
    BitString twin;
    for (std::size_t i = 0; i + 1 < la; ++i) twin.push_back(a.bit(i));
    if (la > 0) twin.push_back(!a.bit(la - 1));
    const BitString indep = BitString::random((la * 7 + 3) % 200, rng);
    const std::vector<const BitString*> rhs{&a, &ext, &twin, &indep};
    for (const BitString* b : rhs) {
      EXPECT_EQ(a <=> *b, ordering_ref(a, *b))
          << "la=" << la << " lb=" << b->size();
      EXPECT_EQ(*b <=> a, ordering_ref(*b, a))
          << "la=" << la << " lb=" << b->size();
    }
    EXPECT_EQ(a <=> ext, std::strong_ordering::less);
  }
}

TEST(BitStringProperty, ComparableIsEquivalentToEitherPrefix) {
  // comparable() is *defined* as is_prefix_of either way round; the
  // single-scan implementation must preserve that equivalence exactly,
  // heap-spilled strings included.
  Rng rng(0xc0ffee);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t la = rng.next_u64() % 260;
    const std::size_t lb = rng.next_u64() % 260;
    BitString a = BitString::random(la, rng);
    BitString b;
    if (rng.next_u64() % 2 == 0 && la > 0) {
      // Half the trials: force a shared random prefix so the comparable
      // branch is exercised, not just the first-word mismatch exit.
      const std::size_t cut = rng.next_u64() % std::min(la, lb + 1);
      b = a.prefix(cut);
      if (lb > cut) b.append_random(lb - cut, rng);
    } else {
      b = BitString::random(lb, rng);
    }
    EXPECT_EQ(a.comparable(b),
              a.is_prefix_of(b) || b.is_prefix_of(a))
        << "trial " << trial << " la=" << la << " lb=" << b.size();
  }
}

TEST(BitString, PaddingInvariantAfterOperations) {
  // The unused high bits of the last word must stay zero through every
  // operation, or equality/hashing would diverge from bit content.
  Rng rng(23);
  BitString a = BitString::random(70, rng);
  a.append(BitString::random(3, rng));
  const BitString rebuilt = BitString::from_binary(a.to_binary());
  EXPECT_EQ(a, rebuilt);
  const auto aw = a.words();
  const auto rw = rebuilt.words();
  ASSERT_EQ(aw.size(), rw.size());
  EXPECT_TRUE(std::equal(aw.begin(), aw.end(), rw.begin()));
}

}  // namespace
}  // namespace s2d
