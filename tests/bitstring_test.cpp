#include "util/bitstring.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "util/rng.h"

namespace s2d {
namespace {

TEST(BitString, EmptyBasics) {
  BitString b;
  EXPECT_EQ(b.size(), 0u);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.to_binary(), "");
  EXPECT_EQ(b, BitString());
}

TEST(BitString, FromBinaryRoundTrip) {
  const std::string pattern = "0110100111010001";
  BitString b = BitString::from_binary(pattern);
  EXPECT_EQ(b.size(), pattern.size());
  EXPECT_EQ(b.to_binary(), pattern);
}

TEST(BitString, PushBackBuildsInOrder) {
  BitString b;
  b.push_back(true);
  b.push_back(false);
  b.push_back(true);
  EXPECT_EQ(b.to_binary(), "101");
  EXPECT_TRUE(b.bit(0));
  EXPECT_FALSE(b.bit(1));
  EXPECT_TRUE(b.bit(2));
}

TEST(BitString, PushBackAcrossWordBoundary) {
  BitString b;
  std::string expect;
  for (int i = 0; i < 200; ++i) {
    const bool v = (i % 3) == 0;
    b.push_back(v);
    expect.push_back(v ? '1' : '0');
  }
  EXPECT_EQ(b.size(), 200u);
  EXPECT_EQ(b.to_binary(), expect);
}

TEST(BitString, AppendMatchesStringConcat) {
  BitString a = BitString::from_binary("1101");
  BitString b = BitString::from_binary("0011");
  BitString c = a.concat(b);
  EXPECT_EQ(c.to_binary(), "11010011");
  a.append(b);
  EXPECT_EQ(a, c);
}

TEST(BitString, AppendAtWordBoundaryFastPath) {
  Rng rng(7);
  BitString a = BitString::random(128, rng);  // exactly two words
  BitString b = BitString::random(70, rng);
  const std::string expect = a.to_binary() + b.to_binary();
  a.append(b);
  EXPECT_EQ(a.to_binary(), expect);
}

TEST(BitString, AppendEmptyIsIdentity) {
  BitString a = BitString::from_binary("10101");
  BitString copy = a;
  a.append(BitString{});
  EXPECT_EQ(a, copy);
  BitString empty;
  empty.append(copy);
  EXPECT_EQ(empty, copy);
}

TEST(BitString, PrefixReflexive) {
  Rng rng(11);
  const BitString a = BitString::random(77, rng);
  EXPECT_TRUE(a.is_prefix_of(a));
  EXPECT_TRUE(a.comparable(a));
}

TEST(BitString, EmptyIsPrefixOfEverything) {
  Rng rng(12);
  const BitString a = BitString::random(9, rng);
  EXPECT_TRUE(BitString().is_prefix_of(a));
  EXPECT_FALSE(a.is_prefix_of(BitString()));
}

TEST(BitString, PrefixDetectsExtension) {
  BitString a = BitString::from_binary("1100");
  BitString b = a.concat(BitString::from_binary("01"));
  EXPECT_TRUE(a.is_prefix_of(b));
  EXPECT_FALSE(b.is_prefix_of(a));
  EXPECT_TRUE(a.comparable(b));
  EXPECT_TRUE(b.comparable(a));
}

TEST(BitString, IncomparableStrings) {
  BitString a = BitString::from_binary("1100");
  BitString b = BitString::from_binary("1010");
  EXPECT_FALSE(a.is_prefix_of(b));
  EXPECT_FALSE(b.is_prefix_of(a));
  EXPECT_FALSE(a.comparable(b));
}

TEST(BitString, SameLengthPrefixIsEquality) {
  // For equal lengths, "is a prefix of" must coincide with equality —
  // the receiver's wrong-packet rule depends on this.
  Rng rng(13);
  const BitString a = BitString::random(100, rng);
  BitString b = a;
  EXPECT_TRUE(a.is_prefix_of(b));
  b = BitString::random(100, rng);
  ASSERT_NE(a, b);
  EXPECT_FALSE(a.is_prefix_of(b));
}

TEST(BitString, PrefixAcrossWordBoundaries) {
  Rng rng(14);
  const BitString a = BitString::random(300, rng);
  for (std::size_t n : {0u, 1u, 63u, 64u, 65u, 128u, 299u, 300u}) {
    EXPECT_TRUE(a.prefix(n).is_prefix_of(a)) << n;
    EXPECT_EQ(a.prefix(n).size(), n);
  }
}

TEST(BitString, PrefixMethodMatchesToBinary) {
  Rng rng(15);
  const BitString a = BitString::random(150, rng);
  const std::string s = a.to_binary();
  EXPECT_EQ(a.prefix(71).to_binary(), s.substr(0, 71));
}

TEST(BitString, SuffixMatchesToBinary) {
  Rng rng(16);
  const BitString a = BitString::random(150, rng);
  const std::string s = a.to_binary();
  EXPECT_EQ(a.suffix(40).to_binary(), s.substr(150 - 40));
  EXPECT_EQ(a.suffix(0).size(), 0u);
  EXPECT_EQ(a.suffix(150), a);
}

TEST(BitString, RandomHasExactLength) {
  Rng rng(17);
  for (std::size_t n : {1u, 5u, 63u, 64u, 65u, 129u, 1000u}) {
    EXPECT_EQ(BitString::random(n, rng).size(), n);
  }
}

TEST(BitString, RandomZeroBits) {
  Rng rng(18);
  EXPECT_EQ(BitString::random(0, rng), BitString());
}

TEST(BitString, RandomIsRoughlyBalanced) {
  Rng rng(19);
  const BitString a = BitString::random(10000, rng);
  std::size_t ones = 0;
  for (std::size_t i = 0; i < a.size(); ++i) ones += a.bit(i) ? 1u : 0u;
  EXPECT_GT(ones, 4700u);
  EXPECT_LT(ones, 5300u);
}

TEST(BitString, RandomCollisionsAreRare) {
  Rng rng(20);
  std::set<std::string> seen;
  for (int i = 0; i < 2000; ++i) {
    seen.insert(BitString::random(64, rng).to_binary());
  }
  EXPECT_EQ(seen.size(), 2000u);  // 2000 draws of 64 bits never collide
}

TEST(BitString, OrderingIsStrictTotalOrder) {
  BitString a = BitString::from_binary("0");
  BitString b = BitString::from_binary("00");
  BitString c = BitString::from_binary("1");
  EXPECT_LT(a, b);  // prefix sorts first
  EXPECT_LT(b, c);
  EXPECT_LT(a, c);
  EXPECT_EQ(a <=> a, std::strong_ordering::equal);
}

TEST(BitString, HashDistinguishesLengths) {
  // "0" and "00" share word content; length must feed the hash.
  BitString a = BitString::from_binary("0");
  BitString b = BitString::from_binary("00");
  EXPECT_NE(a, b);
  EXPECT_NE(a.hash(), b.hash());
}

TEST(BitString, UnorderedSetUsable) {
  Rng rng(21);
  std::unordered_set<BitString> set;
  std::vector<BitString> values;
  for (int i = 0; i < 100; ++i) values.push_back(BitString::random(90, rng));
  for (const auto& v : values) set.insert(v);
  EXPECT_EQ(set.size(), 100u);
  for (const auto& v : values) EXPECT_TRUE(set.contains(v));
}

TEST(BitString, FromWordsRoundTrip) {
  Rng rng(22);
  const BitString a = BitString::random(130, rng);
  const BitString b = BitString::from_words(a.words(), a.size());
  EXPECT_EQ(a, b);
}

TEST(BitString, PaddingInvariantAfterOperations) {
  // The unused high bits of the last word must stay zero through every
  // operation, or equality/hashing would diverge from bit content.
  Rng rng(23);
  BitString a = BitString::random(70, rng);
  a.append(BitString::random(3, rng));
  const BitString rebuilt = BitString::from_binary(a.to_binary());
  EXPECT_EQ(a, rebuilt);
  EXPECT_EQ(a.words(), rebuilt.words());
}

}  // namespace
}  // namespace s2d
