#include "util/bitstring.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_set>

#include "util/rng.h"

namespace s2d {
namespace {

TEST(BitString, EmptyBasics) {
  BitString b;
  EXPECT_EQ(b.size(), 0u);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.to_binary(), "");
  EXPECT_EQ(b, BitString());
}

TEST(BitString, FromBinaryRoundTrip) {
  const std::string pattern = "0110100111010001";
  BitString b = BitString::from_binary(pattern);
  EXPECT_EQ(b.size(), pattern.size());
  EXPECT_EQ(b.to_binary(), pattern);
}

TEST(BitString, PushBackBuildsInOrder) {
  BitString b;
  b.push_back(true);
  b.push_back(false);
  b.push_back(true);
  EXPECT_EQ(b.to_binary(), "101");
  EXPECT_TRUE(b.bit(0));
  EXPECT_FALSE(b.bit(1));
  EXPECT_TRUE(b.bit(2));
}

TEST(BitString, PushBackAcrossWordBoundary) {
  BitString b;
  std::string expect;
  for (int i = 0; i < 200; ++i) {
    const bool v = (i % 3) == 0;
    b.push_back(v);
    expect.push_back(v ? '1' : '0');
  }
  EXPECT_EQ(b.size(), 200u);
  EXPECT_EQ(b.to_binary(), expect);
}

TEST(BitString, AppendMatchesStringConcat) {
  BitString a = BitString::from_binary("1101");
  BitString b = BitString::from_binary("0011");
  BitString c = a.concat(b);
  EXPECT_EQ(c.to_binary(), "11010011");
  a.append(b);
  EXPECT_EQ(a, c);
}

TEST(BitString, AppendAtWordBoundaryFastPath) {
  Rng rng(7);
  BitString a = BitString::random(128, rng);  // exactly two words
  BitString b = BitString::random(70, rng);
  const std::string expect = a.to_binary() + b.to_binary();
  a.append(b);
  EXPECT_EQ(a.to_binary(), expect);
}

TEST(BitString, AppendEmptyIsIdentity) {
  BitString a = BitString::from_binary("10101");
  BitString copy = a;
  a.append(BitString{});
  EXPECT_EQ(a, copy);
  BitString empty;
  empty.append(copy);
  EXPECT_EQ(empty, copy);
}

TEST(BitString, PrefixReflexive) {
  Rng rng(11);
  const BitString a = BitString::random(77, rng);
  EXPECT_TRUE(a.is_prefix_of(a));
  EXPECT_TRUE(a.comparable(a));
}

TEST(BitString, EmptyIsPrefixOfEverything) {
  Rng rng(12);
  const BitString a = BitString::random(9, rng);
  EXPECT_TRUE(BitString().is_prefix_of(a));
  EXPECT_FALSE(a.is_prefix_of(BitString()));
}

TEST(BitString, PrefixDetectsExtension) {
  BitString a = BitString::from_binary("1100");
  BitString b = a.concat(BitString::from_binary("01"));
  EXPECT_TRUE(a.is_prefix_of(b));
  EXPECT_FALSE(b.is_prefix_of(a));
  EXPECT_TRUE(a.comparable(b));
  EXPECT_TRUE(b.comparable(a));
}

TEST(BitString, IncomparableStrings) {
  BitString a = BitString::from_binary("1100");
  BitString b = BitString::from_binary("1010");
  EXPECT_FALSE(a.is_prefix_of(b));
  EXPECT_FALSE(b.is_prefix_of(a));
  EXPECT_FALSE(a.comparable(b));
}

TEST(BitString, SameLengthPrefixIsEquality) {
  // For equal lengths, "is a prefix of" must coincide with equality —
  // the receiver's wrong-packet rule depends on this.
  Rng rng(13);
  const BitString a = BitString::random(100, rng);
  BitString b = a;
  EXPECT_TRUE(a.is_prefix_of(b));
  b = BitString::random(100, rng);
  ASSERT_NE(a, b);
  EXPECT_FALSE(a.is_prefix_of(b));
}

TEST(BitString, PrefixAcrossWordBoundaries) {
  Rng rng(14);
  const BitString a = BitString::random(300, rng);
  for (std::size_t n : {0u, 1u, 63u, 64u, 65u, 128u, 299u, 300u}) {
    EXPECT_TRUE(a.prefix(n).is_prefix_of(a)) << n;
    EXPECT_EQ(a.prefix(n).size(), n);
  }
}

TEST(BitString, PrefixMethodMatchesToBinary) {
  Rng rng(15);
  const BitString a = BitString::random(150, rng);
  const std::string s = a.to_binary();
  EXPECT_EQ(a.prefix(71).to_binary(), s.substr(0, 71));
}

TEST(BitString, SuffixMatchesToBinary) {
  Rng rng(16);
  const BitString a = BitString::random(150, rng);
  const std::string s = a.to_binary();
  EXPECT_EQ(a.suffix(40).to_binary(), s.substr(150 - 40));
  EXPECT_EQ(a.suffix(0).size(), 0u);
  EXPECT_EQ(a.suffix(150), a);
}

TEST(BitString, RandomHasExactLength) {
  Rng rng(17);
  for (std::size_t n : {1u, 5u, 63u, 64u, 65u, 129u, 1000u}) {
    EXPECT_EQ(BitString::random(n, rng).size(), n);
  }
}

TEST(BitString, RandomZeroBits) {
  Rng rng(18);
  EXPECT_EQ(BitString::random(0, rng), BitString());
}

TEST(BitString, RandomIsRoughlyBalanced) {
  Rng rng(19);
  const BitString a = BitString::random(10000, rng);
  std::size_t ones = 0;
  for (std::size_t i = 0; i < a.size(); ++i) ones += a.bit(i) ? 1u : 0u;
  EXPECT_GT(ones, 4700u);
  EXPECT_LT(ones, 5300u);
}

TEST(BitString, RandomCollisionsAreRare) {
  Rng rng(20);
  std::set<std::string> seen;
  for (int i = 0; i < 2000; ++i) {
    seen.insert(BitString::random(64, rng).to_binary());
  }
  EXPECT_EQ(seen.size(), 2000u);  // 2000 draws of 64 bits never collide
}

TEST(BitString, OrderingIsStrictTotalOrder) {
  BitString a = BitString::from_binary("0");
  BitString b = BitString::from_binary("00");
  BitString c = BitString::from_binary("1");
  EXPECT_LT(a, b);  // prefix sorts first
  EXPECT_LT(b, c);
  EXPECT_LT(a, c);
  EXPECT_EQ(a <=> a, std::strong_ordering::equal);
}

TEST(BitString, HashDistinguishesLengths) {
  // "0" and "00" share word content; length must feed the hash.
  BitString a = BitString::from_binary("0");
  BitString b = BitString::from_binary("00");
  EXPECT_NE(a, b);
  EXPECT_NE(a.hash(), b.hash());
}

TEST(BitString, UnorderedSetUsable) {
  Rng rng(21);
  std::unordered_set<BitString> set;
  std::vector<BitString> values;
  for (int i = 0; i < 100; ++i) values.push_back(BitString::random(90, rng));
  for (const auto& v : values) set.insert(v);
  EXPECT_EQ(set.size(), 100u);
  for (const auto& v : values) EXPECT_TRUE(set.contains(v));
}

TEST(BitString, FromWordsRoundTrip) {
  Rng rng(22);
  const BitString a = BitString::random(130, rng);
  const BitString b = BitString::from_words(a.words(), a.size());
  EXPECT_EQ(a, b);
}

TEST(BitString, TryFromWordsRejectsMalformedInput) {
  // Wrong word count for the bit length.
  const std::uint64_t one[] = {1};
  EXPECT_FALSE(BitString::try_from_words(one, 65).has_value());
  const std::uint64_t two[] = {1, 0};
  EXPECT_FALSE(BitString::try_from_words(two, 64).has_value());
  // Nonzero padding bits above nbits violate the class invariant and must
  // be rejected, not silently masked: a forged packet could otherwise
  // smuggle two different word images of the same logical string past
  // equality/hashing.
  const std::uint64_t padded[] = {std::uint64_t{1} << 10};
  EXPECT_FALSE(BitString::try_from_words(padded, 10).has_value());
  const std::uint64_t ok[] = {(std::uint64_t{1} << 10) - 1};
  const auto got = BitString::try_from_words(ok, 10);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->to_binary(), "1111111111");
  // Empty is fine.
  EXPECT_TRUE(BitString::try_from_words({}, 0).has_value());
}

TEST(BitString, PrefixSuffixAtWordBoundaries) {
  // 63/64/65 bits straddle the word boundary — the shift paths differ.
  Rng rng(24);
  const BitString a = BitString::random(130, rng);
  const std::string s = a.to_binary();
  for (std::size_t n : {0u, 1u, 63u, 64u, 65u, 127u, 128u, 129u, 130u}) {
    EXPECT_EQ(a.prefix(n).to_binary(), s.substr(0, n)) << n;
    EXPECT_EQ(a.suffix(n).to_binary(), s.substr(s.size() - n)) << n;
    EXPECT_TRUE(a.prefix(n).is_prefix_of(a)) << n;
  }
}

TEST(BitString, InlineToHeapTransitionPreservesContent) {
  // Growing past the 128-bit small buffer must not disturb existing bits,
  // and values must round-trip through copies/moves in both storage modes.
  Rng rng(25);
  BitString a = BitString::random(128, rng);  // exactly fills the SBO
  const std::string small = a.to_binary();
  a.append(BitString::random(1, rng));  // forces the heap transition
  EXPECT_EQ(a.to_binary().substr(0, 128), small);
  EXPECT_EQ(a.size(), 129u);

  const BitString heap_copy = a;  // heap -> fresh object
  EXPECT_EQ(heap_copy, a);
  BitString small_val = BitString::random(7, rng);
  const std::string small_bits = small_val.to_binary();
  BitString stolen = std::move(a);  // heap move
  EXPECT_EQ(stolen, heap_copy);
  stolen = small_val;  // heap object assigned a small value
  EXPECT_EQ(stolen.to_binary(), small_bits);
  // Move-assign from an inline source copies instead of stealing (keeps
  // the destination's capacity warm, never allocates) — the source keeps
  // its value.
  stolen = std::move(small_val);
  EXPECT_EQ(stolen.to_binary(), small_bits);
  EXPECT_EQ(small_val.to_binary(), small_bits);  // NOLINT(bugprone-use-after-move)

  // clear() + reuse keeps the invariant (padding words re-zeroed).
  stolen = heap_copy;
  stolen.clear();
  EXPECT_EQ(stolen.size(), 0u);
  stolen.append_bits(0b101u, 3);
  EXPECT_EQ(stolen.to_binary(), "101");
  EXPECT_EQ(stolen, BitString::from_binary("101"));
  EXPECT_EQ(stolen.hash(), BitString::from_binary("101").hash());
}

TEST(BitString, AppendRandomMatchesRandomStream) {
  // append_random must consume the RNG exactly like BitString::random so
  // seeded executions stay replayable across the in-place refactor.
  for (std::size_t n : {1u, 63u, 64u, 65u, 200u}) {
    Rng r1(42), r2(42);
    BitString grown;
    grown.append_random(n, r1);
    EXPECT_EQ(grown, BitString::random(n, r2)) << n;
    EXPECT_EQ(r1.next_u64(), r2.next_u64()) << n;  // streams stay in sync
  }
  // Appending in two chunks equals the bits of two sequential draws.
  Rng r1(43), r2(43);
  BitString two_step;
  two_step.append_random(70, r1);
  two_step.append_random(30, r1);
  BitString a = BitString::random(70, r2);
  a.append(BitString::random(30, r2));
  EXPECT_EQ(two_step, a);
}

TEST(BitString, PaddingInvariantAfterOperations) {
  // The unused high bits of the last word must stay zero through every
  // operation, or equality/hashing would diverge from bit content.
  Rng rng(23);
  BitString a = BitString::random(70, rng);
  a.append(BitString::random(3, rng));
  const BitString rebuilt = BitString::from_binary(a.to_binary());
  EXPECT_EQ(a, rebuilt);
  const auto aw = a.words();
  const auto rw = rebuilt.words();
  ASSERT_EQ(aw.size(), rw.size());
  EXPECT_TRUE(std::equal(aw.begin(), aw.end(), rw.begin()));
}

}  // namespace
}  // namespace s2d
