// Soak tests: sustained high-volume executions that would expose slow
// state corruption, counter drift, unbounded growth or checker divergence
// that short unit runs cannot. Budgeted to stay within a few seconds.
#include <gtest/gtest.h>

#include "adversary/adversaries.h"
#include "core/ghm.h"
#include "fleet/fleet.h"
#include "harness/runner.h"
#include "link/datalink.h"

namespace s2d {
namespace {

constexpr double kEps = 1.0 / (1 << 20);

TEST(Soak, TenThousandMessagesOverChaos) {
  DataLinkConfig cfg;
  cfg.retry_every = 3;
  cfg.keep_trace = false;  // memory: the checker runs online regardless
  auto pair = make_ghm(GrowthPolicy::geometric(kEps), 1);
  DataLink link(std::move(pair.tm), std::move(pair.rm),
                std::make_unique<RandomFaultAdversary>(
                    FaultProfile::chaos(0.08), Rng(2)),
                cfg);
  const RunReport r = run_workload(link, {.messages = 10000}, Rng(3));
  EXPECT_EQ(r.completed, 10000u);
  EXPECT_TRUE(link.checker().clean()) << link.checker().violations().summary();
  // Storage claim over a long run: state stays flat (epoch-1 sizes).
  EXPECT_LT(link.stats().max_rm_state_bits, 1200u);
}

TEST(Soak, LongCrashStormNeverViolates) {
  std::uint64_t completed = 0;
  std::uint64_t aborted = 0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    DataLinkConfig cfg;
    cfg.retry_every = 3;
    cfg.keep_trace = false;
    FaultProfile p = FaultProfile::chaos(0.05);
    p.crash_t = 0.001;
    p.crash_r = 0.001;
    auto pair = make_ghm(GrowthPolicy::geometric(kEps), seed + 10);
    DataLink link(std::move(pair.tm), std::move(pair.rm),
                  std::make_unique<RandomFaultAdversary>(p, Rng(seed + 20)),
                  cfg);
    const RunReport r = run_workload(
        link, {.messages = 2000, .stop_on_stall = false}, Rng(seed + 30));
    completed += r.completed;
    aborted += r.aborted;
    EXPECT_TRUE(link.checker().clean())
        << "seed=" << seed << " " << link.checker().violations().summary();
  }
  EXPECT_GT(completed, 5000u);
  EXPECT_GT(aborted, 0u);  // the storm did bite; safety held anyway
}

TEST(Soak, SustainedReplayPressureAcrossManyEpochs) {
  // A replay attacker with a huge recorded history hammering the receiver
  // for a long time: the epochs must climb and then stabilise (old packets
  // fall behind the length check), with zero violations throughout.
  DataLinkConfig cfg;
  cfg.retry_every = 3;
  cfg.keep_trace = false;
  auto pair = make_ghm(GrowthPolicy::paper_linear(1.0 / 1024), 40);
  const GhmReceiver* rm = pair.rm.get();
  DataLink link(std::move(pair.tm), std::move(pair.rm),
                std::make_unique<ReplayAttacker>(2000, Rng(41)), cfg);
  WorkloadConfig wl;
  wl.messages = 2000;
  wl.max_steps_per_message = 2000;
  wl.drain_steps = 300000;  // sustained attack
  wl.stop_on_stall = false;
  (void)run_workload(link, wl, Rng(42));
  EXPECT_TRUE(link.checker().clean()) << link.checker().violations().summary();
  // paper_linear extends once per wrong packet at epoch 1-2, so a long
  // attack pushes through multiple epochs before stabilising.
  EXPECT_GE(rm->epoch(), 2u);
}

TEST(Soak, ExecutorStepCountsStayConsistent) {
  // Internal accounting invariants after a long mixed run: offered =
  // completed + aborted + in-flight, and every OK has a matching trace
  // event.
  DataLinkConfig cfg;
  cfg.retry_every = 4;
  FaultProfile p = FaultProfile::chaos(0.1);
  p.crash_t = 0.0005;
  auto pair = make_ghm(GrowthPolicy::geometric(kEps), 50);
  DataLink link(std::move(pair.tm), std::move(pair.rm),
                std::make_unique<RandomFaultAdversary>(p, Rng(51)), cfg);
  const RunReport r = run_workload(
      link, {.messages = 3000, .stop_on_stall = false}, Rng(52));
  EXPECT_EQ(r.offered, r.completed + r.aborted + r.stalled);
  EXPECT_EQ(link.trace().count(ActionKind::kOk), r.completed);
  EXPECT_EQ(link.trace().count(ActionKind::kSendMsg), r.offered);
  EXPECT_EQ(link.stats().oks, r.completed);
}

TEST(Soak, FleetOfFiveHundredSessionsStaysDeterministic) {
  // Fleet-scale soak: 512 concurrent sessions, crashes enabled, run at
  // two different shard counts — identical aggregate, zero violations.
  FleetConfig cfg;
  cfg.sessions = 512;
  cfg.root_seed = 0x50a4;
  cfg.workload.messages = 8;
  cfg.workload.payload_bytes = 16;
  cfg.workload.stop_on_stall = false;

  GhmFleetOptions opts;
  opts.faults = FaultProfile::chaos(0.08);
  opts.faults.crash_t = 0.0002;
  opts.faults.crash_r = 0.0002;
  const SessionFactory factory = make_ghm_fleet_factory(opts);

  cfg.threads = 3;
  const FleetResult a = run_fleet(cfg, factory);
  cfg.threads = 8;
  const FleetResult b = run_fleet(cfg, factory);

  EXPECT_EQ(a.report.fingerprint(), b.report.fingerprint());
  EXPECT_EQ(a.report.sessions, 512u);
  EXPECT_EQ(a.report.offered,
            a.report.completed + a.report.aborted + a.report.stalled);
  EXPECT_EQ(a.report.violations.safety_total(), 0u)
      << a.report.violations.summary();
  EXPECT_EQ(a.report.violations.axiom, 0u);
}

}  // namespace
}  // namespace s2d
