// Differential harness for the slab fleet engine: the slab/SoA path and
// the legacy one-object-graph-at-a-time oracle must produce byte-identical
// canonicalized FleetReports over a grid of (system x adversary x shard
// count x fleet size x batch shape).
//
// This is the test that licenses the slab refactor. The slab engine may
// interleave sessions in any order, visit them in any batch size, jitter
// its budgets and pack state into arenas — but a session's observable
// execution is a pure function of (SessionSpec, WorkloadConfig), so every
// aggregate must land on the same bytes. Any divergence — a misplaced
// RNG draw, a dropped drain step, an off-by-one in the abort/stall
// distinction — shows up here as a fingerprint mismatch.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "adversary/adversaries.h"
#include "fleet/fleet.h"
#include "harness/systems.h"

namespace s2d {
namespace {

// Child-stream salts for the named-system factory below. Like the GHM
// factory's salts they only need to be distinct from kFleetWorkloadSalt
// and each other.
constexpr std::uint64_t kModuleSalt = 0x6d6f64756c65ULL;  // "module"
constexpr std::uint64_t kFaultSalt = 0x6661756c74ULL;     // "fault"

/// Fleet factory over the named-system registry: each session gets a
/// fresh `name` module pair and a RandomFaultAdversary, all seeded from
/// the SessionSpec. Exercises protocols whose state layout differs
/// radically from GHM's (modular sequence numbers, nonvolatile bits,
/// randomized session ids).
SessionFactory make_named_factory(std::string name, FaultProfile faults) {
  return [name = std::move(name), faults](const SessionSpec& spec) {
    DataLinkConfig cfg;
    cfg.retry_every = 4;
    cfg.tx_timer_every = 6;  // transmitter-driven baselines need the timer
    cfg.keep_trace = false;
    ModulePair pair =
        make_module_pair(name, spec.rng(kModuleSalt).next_u64());
    auto adv = std::make_unique<RandomFaultAdversary>(faults,
                                                      spec.rng(kFaultSalt));
    return std::make_unique<DataLink>(std::move(pair.tm), std::move(pair.rm),
                                      std::move(adv), cfg);
  };
}

struct GridCase {
  std::string label;
  SessionFactory factory;
  WorkloadConfig workload;
};

WorkloadConfig quick_workload() {
  WorkloadConfig w;
  w.messages = 4;
  w.payload_bytes = 24;
  w.max_steps_per_message = 2000;
  return w;
}

/// Crash-heavy workload shape: small step budget forces stalls, crashes
/// force aborts, drain steps exercise the post-workload drain phase and
/// stop_on_stall=false exercises the continue-after-stall path — every
/// branch of the slab engine's resumable per-session state machine.
WorkloadConfig stress_workload() {
  WorkloadConfig w;
  w.messages = 5;
  w.payload_bytes = 8;
  w.max_steps_per_message = 400;
  w.drain_steps = 16;
  w.stop_on_stall = false;
  return w;
}

std::vector<GridCase> grid() {
  std::vector<GridCase> cases;
  cases.push_back({"ghm/chaos", make_ghm_fleet_factory(), quick_workload()});

  GhmFleetOptions crashy;
  crashy.epsilon = 1.0 / (1 << 8);  // coarse eps -> shorter strings
  crashy.faults = {.loss = 0.05,
                   .duplicate = 0.05,
                   .reorder = 0.15,
                   .crash_t = 0.02,
                   .crash_r = 0.01};
  cases.push_back({"ghm/crashy", make_ghm_fleet_factory(crashy),
                   stress_workload()});

  // Spill-forcing grid point: epsilon small enough that size(1,eps) =
  // 6 + ceil(log2(1/eps)) already exceeds BitString's 128-bit inline
  // capacity, so EVERY rho/tau lives in the shard arena under the slab
  // engine (and on the plain heap under legacy) from the first epoch.
  // Combined with the crash/drain workload this diffs the interned
  // spill layout under aborts, stalls and the drain phase.
  GhmFleetOptions spilly = crashy;
  spilly.epsilon = 1e-42;  // ~146-bit initial strings
  cases.push_back({"ghm/spilly", make_ghm_fleet_factory(spilly),
                   stress_workload()});

  const FaultProfile chaos = FaultProfile::chaos(0.05);
  for (const char* name : {"stopwait", "abp", "nvbit", "ab_random"}) {
    cases.push_back(
        {std::string(name) + "/chaos", make_named_factory(name, chaos),
         quick_workload()});
  }
  return cases;
}

/// Fingerprint equality plus the individual fields behind it, so a
/// divergence names the counter that moved instead of just "hash differs".
void expect_identical(const FleetReport& want, const FleetReport& got,
                      const std::string& what) {
  EXPECT_EQ(want.fingerprint(), got.fingerprint()) << what;
  EXPECT_EQ(want.offered, got.offered) << what;
  EXPECT_EQ(want.completed, got.completed) << what;
  EXPECT_EQ(want.aborted, got.aborted) << what;
  EXPECT_EQ(want.stalled, got.stalled) << what;
  EXPECT_EQ(want.link.steps, got.link.steps) << what;
  EXPECT_EQ(want.link.oks, got.link.oks) << what;
  EXPECT_EQ(want.link.retries, got.link.retries) << what;
  EXPECT_EQ(want.link.crashes_t, got.link.crashes_t) << what;
  EXPECT_EQ(want.link.crashes_r, got.link.crashes_r) << what;
  EXPECT_EQ(want.link.max_tm_state_bits, got.link.max_tm_state_bits) << what;
  EXPECT_EQ(want.link.max_rm_state_bits, got.link.max_rm_state_bits) << what;
  EXPECT_EQ(want.violations.causality, got.violations.causality) << what;
  EXPECT_EQ(want.violations.order, got.violations.order) << what;
  EXPECT_EQ(want.violations.duplication, got.violations.duplication) << what;
  EXPECT_EQ(want.violations.replay, got.violations.replay) << what;
  EXPECT_EQ(want.violations.axiom, got.violations.axiom) << what;
  EXPECT_EQ(want.tr_packets, got.tr_packets) << what;
  EXPECT_EQ(want.rt_packets, got.rt_packets) << what;
  EXPECT_EQ(want.tr_bytes, got.tr_bytes) << what;
  EXPECT_EQ(want.rt_bytes, got.rt_bytes) << what;
  EXPECT_EQ(want.steps_per_ok.values(), got.steps_per_ok.values()) << what;
}

TEST(FleetSlabDiff, SlabMatchesLegacyAcrossGrid) {
  for (const GridCase& c : grid()) {
    // One fingerprint per (case, N): shard count, engine, batch size and
    // jitter must all be invisible in the aggregate.
    for (const std::uint64_t sessions : {std::uint64_t{5}, std::uint64_t{23}}) {
      std::string reference_fp;
      for (const unsigned shards : {1U, 3U}) {
        FleetConfig cfg;
        cfg.sessions = sessions;
        cfg.threads = shards;
        cfg.root_seed = 0xd1ffULL + sessions;
        cfg.workload = c.workload;

        cfg.engine = FleetEngine::kLegacy;
        const FleetReport legacy = run_fleet(cfg, c.factory).report;

        cfg.engine = FleetEngine::kSlab;
        cfg.batch_steps = 1;  // finest interleaving: round-robin stepping
        const FleetReport slab_fine = run_fleet(cfg, c.factory).report;

        cfg.batch_steps = 97;  // coarse, non-power-of-two, jittered
        cfg.batch_jitter = true;
        const FleetReport slab_coarse = run_fleet(cfg, c.factory).report;

        const std::string what = c.label + " N=" + std::to_string(sessions) +
                                 " shards=" + std::to_string(shards);
        expect_identical(legacy, slab_fine, what + " [slab batch=1]");
        expect_identical(legacy, slab_coarse,
                         what + " [slab batch=97 jitter]");

        if (reference_fp.empty()) {
          reference_fp = legacy.fingerprint();
        } else {
          EXPECT_EQ(reference_fp, legacy.fingerprint())
              << c.label << " N=" << sessions
              << ": legacy diverged across shard counts";
        }
      }
    }
  }
}

TEST(FleetSlabDiff, StressWorkloadExercisesEveryPhase) {
  // Sanity that the crashy grid point actually reaches the abort/stall
  // paths — a diff test over permanently-green counters proves nothing.
  GhmFleetOptions crashy;
  crashy.epsilon = 1.0 / (1 << 8);
  crashy.faults = {.loss = 0.05,
                   .duplicate = 0.05,
                   .reorder = 0.15,
                   .crash_t = 0.02,
                   .crash_r = 0.01};
  FleetConfig cfg;
  cfg.sessions = 23;
  cfg.threads = 1;
  cfg.root_seed = 0xd1ffULL + 23;
  cfg.workload = stress_workload();
  const FleetReport rep = run_fleet(cfg, make_ghm_fleet_factory(crashy)).report;
  EXPECT_GT(rep.aborted, 0u);
  EXPECT_GT(rep.completed, 0u);
  EXPECT_EQ(rep.offered, cfg.sessions * cfg.workload.messages);
}

TEST(FleetSlabDiff, SpillyGridPointActuallySpills) {
  // Sanity for the ghm/spilly grid point: its strings must genuinely
  // outgrow the 128-bit inline BitString buffer, or the "interned spill
  // under crashes and drain" diff row would be testing the inline path
  // twice. state_bits counts rho + tau + payload + 3x64 bookkeeping, so
  // with ~146-bit strings the transmitter maximum sits far above what any
  // inline-only execution (<= 128 + 128 + 64 + 192 = 512) could reach.
  GhmFleetOptions spilly;
  spilly.epsilon = 1e-42;
  spilly.faults = {.loss = 0.05,
                   .duplicate = 0.05,
                   .reorder = 0.15,
                   .crash_t = 0.02,
                   .crash_r = 0.01};
  FleetConfig cfg;
  cfg.sessions = 23;
  cfg.threads = 2;
  cfg.root_seed = 0xd1ffULL + 23;
  cfg.workload = stress_workload();
  cfg.engine = FleetEngine::kSlab;
  const FleetReport rep =
      run_fleet(cfg, make_ghm_fleet_factory(spilly)).report;
  // rho alone (>= 146 bits) exceeds the inline capacity.
  EXPECT_GT(rep.link.max_tm_state_bits, 512u);
  EXPECT_GT(rep.completed, 0u);
}

TEST(FleetSlabDiff, ZeroAndOneSessionDegenerates) {
  const SessionFactory factory = make_ghm_fleet_factory();
  for (const std::uint64_t sessions : {std::uint64_t{0}, std::uint64_t{1}}) {
    FleetConfig cfg;
    cfg.sessions = sessions;
    cfg.threads = 2;
    cfg.workload = quick_workload();
    cfg.engine = FleetEngine::kLegacy;
    const FleetReport legacy = run_fleet(cfg, factory).report;
    cfg.engine = FleetEngine::kSlab;
    const FleetReport slab = run_fleet(cfg, factory).report;
    expect_identical(legacy, slab, "N=" + std::to_string(sessions));
  }
}

TEST(FleetSlabDiff, MaxStepsZeroStallsEverySessionIdentically) {
  // Degenerate budget: every message stalls immediately on both engines.
  const SessionFactory factory = make_ghm_fleet_factory();
  FleetConfig cfg;
  cfg.sessions = 7;
  cfg.threads = 2;
  cfg.workload = quick_workload();
  cfg.workload.max_steps_per_message = 0;
  cfg.engine = FleetEngine::kLegacy;
  const FleetReport legacy = run_fleet(cfg, factory).report;
  cfg.engine = FleetEngine::kSlab;
  const FleetReport slab = run_fleet(cfg, factory).report;
  expect_identical(legacy, slab, "max_steps=0");
  EXPECT_GT(slab.stalled, 0u);
}

}  // namespace
}  // namespace s2d
