// Unit tests for GhmTransmitter: each branch of the reconstructed
// transmitter automaton, driven with crafted acks.
#include "core/transmitter.h"

#include <gtest/gtest.h>

namespace s2d {
namespace {

constexpr double kEps = 1.0 / 1024.0;

GhmTransmitter make_tx(std::uint64_t seed = 1) {
  return GhmTransmitter(GrowthPolicy::geometric(kEps), Rng(seed));
}

void push_ack(GhmTransmitter& tx, const BitString& rho, const BitString& tau,
              std::uint64_t retry, TxOutbox& out) {
  tx.on_receive_pkt(AckPacket{rho, tau, retry}.encode(), out);
}

TEST(GhmTransmitter, InitiallyIdleAndChallengeless) {
  GhmTransmitter tx = make_tx();
  EXPECT_FALSE(tx.busy());
  EXPECT_FALSE(tx.knows_challenge());
}

TEST(GhmTransmitter, TauNeverHasTauCrashPrefix) {
  // Every fresh tau must start with "1" (tau'_crash) so tau_crash = "0"
  // is never a prefix — the post-crash delivery guarantee depends on it.
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    GhmTransmitter tx = make_tx(seed);
    ASSERT_GE(tx.tau().size(), 1u);
    EXPECT_TRUE(tx.tau().bit(0));
    TxOutbox out;
    tx.on_send_msg({1, "x"}, out);
    EXPECT_TRUE(tx.tau().bit(0));
  }
}

TEST(GhmTransmitter, SendWithoutChallengeStaysQuiet) {
  GhmTransmitter tx = make_tx();
  TxOutbox out;
  tx.on_send_msg({1, "x"}, out);
  EXPECT_TRUE(tx.busy());
  EXPECT_TRUE(out.pkt_count() == 0u);  // no challenge known yet: nothing to echo
}

TEST(GhmTransmitter, LearnsChallengeFromAckThenSends) {
  GhmTransmitter tx = make_tx();
  Rng rng(50);
  TxOutbox out;
  tx.on_send_msg({1, "x"}, out);
  const BitString rho = BitString::random(15, rng);
  push_ack(tx, rho, BitString::from_binary("0"), 1, out);
  ASSERT_EQ(out.pkt_count(), 1u);
  const auto data = DataPacket::decode(out.pkt(0));
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ(data->msg.id, 1u);
  EXPECT_EQ(data->rho, rho);   // echoes the ack's challenge
  EXPECT_EQ(data->tau, tx.tau());
}

TEST(GhmTransmitter, OkOnExactTauMatch) {
  GhmTransmitter tx = make_tx();
  Rng rng(51);
  TxOutbox out;
  tx.on_send_msg({1, "x"}, out);
  const BitString next_challenge = BitString::random(15, rng);
  push_ack(tx, next_challenge, tx.tau(), 1, out);
  EXPECT_TRUE(out.ok_signalled());
  EXPECT_FALSE(tx.busy());
  EXPECT_TRUE(tx.knows_challenge());
}

TEST(GhmTransmitter, NoOkWhenIdle) {
  GhmTransmitter tx = make_tx();
  TxOutbox out;
  push_ack(tx, BitString::from_binary("101"), tx.tau(), 1, out);
  EXPECT_FALSE(out.ok_signalled());
}

TEST(GhmTransmitter, OkIgnoresRetryFilter) {
  // The receiver resets its retry counter on delivery, so confirming acks
  // arrive with small i; the OK check must not be gated on freshness.
  GhmTransmitter tx = make_tx();
  Rng rng(52);
  TxOutbox out;
  tx.on_send_msg({1, "x"}, out);
  push_ack(tx, BitString::random(15, rng), BitString::from_binary("0"), 100,
           out);  // bump i^T to 100
  out = TxOutbox{};
  push_ack(tx, BitString::random(15, rng), tx.tau(), 1, out);  // stale i
  EXPECT_TRUE(out.ok_signalled());
}

TEST(GhmTransmitter, StaleAckIgnored) {
  GhmTransmitter tx = make_tx();
  Rng rng(53);
  TxOutbox out;
  tx.on_send_msg({1, "x"}, out);
  push_ack(tx, BitString::random(15, rng), BitString::from_binary("0"), 5,
           out);
  const std::size_t pkts_after_first = out.pkt_count();
  // Same retry counter again: a replay — no reply, no state change.
  push_ack(tx, BitString::random(15, rng), BitString::from_binary("0"), 5,
           out);
  EXPECT_EQ(out.pkt_count(), pkts_after_first);
  EXPECT_EQ(tx.highest_retry_seen(), 5u);
}

TEST(GhmTransmitter, FreshAckTriggersRetransmission) {
  GhmTransmitter tx = make_tx();
  Rng rng(54);
  TxOutbox out;
  tx.on_send_msg({1, "x"}, out);
  push_ack(tx, BitString::random(15, rng), BitString::from_binary("0"), 1,
           out);
  push_ack(tx, BitString::random(15, rng), BitString::from_binary("0"), 2,
           out);
  EXPECT_EQ(out.pkt_count(), 2u);  // one data packet per fresh ack
}

TEST(GhmTransmitter, WrongFullLengthTauExtendsAfterBound) {
  GhmTransmitter tx = make_tx(7);
  Rng rng(55);
  const GrowthPolicy policy = GrowthPolicy::geometric(kEps);
  TxOutbox out;
  tx.on_send_msg({1, "x"}, out);
  const BitString tau0 = tx.tau();
  const std::size_t len0 = tau0.size();
  for (std::uint64_t i = 0; i < policy.bound(1); ++i) {
    BitString wrong = BitString::random(len0, rng);
    ASSERT_NE(wrong, tx.tau());
    push_ack(tx, BitString::random(15, rng), wrong, i + 1, out);
  }
  EXPECT_EQ(tx.epoch(), 2u);
  EXPECT_EQ(tx.tau().size(), len0 + policy.size(2));
  EXPECT_TRUE(tau0.is_prefix_of(tx.tau()));  // extension, not replacement
}

TEST(GhmTransmitter, ShortStaleTauNotCounted) {
  GhmTransmitter tx = make_tx(8);
  Rng rng(56);
  TxOutbox out;
  tx.on_send_msg({1, "x"}, out);
  const std::uint64_t epoch_before = tx.epoch();
  for (std::uint64_t i = 0; i < 50; ++i) {
    // tau_crash-style short acks (e.g. from a crashed receiver) must not
    // burn the epoch budget.
    push_ack(tx, BitString::random(15, rng), BitString::from_binary("0"),
             i + 1, out);
  }
  EXPECT_EQ(tx.epoch(), epoch_before);
  EXPECT_EQ(tx.wrong_count(), 0u);
}

TEST(GhmTransmitter, FreshTauPerMessage) {
  GhmTransmitter tx = make_tx(9);
  Rng rng(57);
  TxOutbox out;
  tx.on_send_msg({1, "x"}, out);
  const BitString tau1 = tx.tau();
  push_ack(tx, BitString::random(15, rng), tau1, 1, out);  // OK
  ASSERT_TRUE(out.ok_signalled());
  out = TxOutbox{};
  tx.on_send_msg({2, "y"}, out);
  EXPECT_NE(tx.tau(), tau1);
  // The new message goes out immediately: the confirming ack delivered the
  // next challenge.
  ASSERT_EQ(out.pkt_count(), 1u);
  const auto data = DataPacket::decode(out.pkt(0));
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ(data->msg.id, 2u);
}

TEST(GhmTransmitter, CrashForgetsEverything) {
  GhmTransmitter tx = make_tx(10);
  Rng rng(58);
  TxOutbox out;
  tx.on_send_msg({1, "x"}, out);
  push_ack(tx, BitString::random(15, rng), BitString::from_binary("0"), 9,
           out);
  const BitString tau_before = tx.tau();
  tx.on_crash();
  EXPECT_FALSE(tx.busy());
  EXPECT_FALSE(tx.knows_challenge());
  EXPECT_NE(tx.tau(), tau_before);
  EXPECT_EQ(tx.highest_retry_seen(), 0u);
  EXPECT_EQ(tx.epoch(), 1u);
}

TEST(GhmTransmitter, MalformedAndCrossTypePacketsIgnored) {
  GhmTransmitter tx = make_tx(11);
  TxOutbox out;
  tx.on_send_msg({1, "x"}, out);
  Bytes junk(9, std::byte{0x77});
  tx.on_receive_pkt(junk, out);
  tx.on_receive_pkt(DataPacket{{1, "x"}, {}, {}}.encode(), out);
  EXPECT_FALSE(out.ok_signalled());
  EXPECT_EQ(tx.wrong_count(), 0u);
}

TEST(GhmTransmitter, IdleAckUpdatesChallengeForNextMessage) {
  GhmTransmitter tx = make_tx(12);
  Rng rng(59);
  TxOutbox out;
  const BitString rho = BitString::random(15, rng);
  push_ack(tx, rho, BitString::from_binary("0"), 1, out);
  EXPECT_TRUE(tx.knows_challenge());
  tx.on_send_msg({1, "x"}, out);
  ASSERT_EQ(out.pkt_count(), 1u);
  const auto data = DataPacket::decode(out.pkt(0));
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ(data->rho, rho);
}

}  // namespace
}  // namespace s2d
