// The tentpole differential: a line:2 fabric degenerates to ONE GHM link,
// and that degenerate fabric must be byte-identical to the standalone
// single-link harness — same trace events, same packet lengths, same RNG
// draws, same checker verdict, same step count. This is what licenses
// interpreting multi-hop fabric results as compositions of the paper's
// per-link guarantee: hop links are not "like" the verified link, they
// ARE the verified link.
//
// Also pins generate-vs-execute fidelity of the fabric fuzzer: replaying
// a generated script through run_fabric_candidate reproduces the
// generated run exactly (violations, steps, OKs).
#include <gtest/gtest.h>

#include "harness/fabric.h"
#include "harness/fuzzer.h"
#include "harness/systems.h"
#include "link/script.h"

namespace s2d {
namespace {

/// Field-wise trace comparison (TraceEvent has no operator==; keep the
/// assertion granular so a mismatch names the diverging field).
void expect_same_trace(const Trace& fabric, const Trace& plain) {
  ASSERT_EQ(fabric.events().size(), plain.events().size());
  for (std::size_t i = 0; i < plain.events().size(); ++i) {
    const TraceEvent& f = fabric.events()[i];
    const TraceEvent& p = plain.events()[i];
    EXPECT_EQ(f.kind, p.kind) << "event " << i;
    EXPECT_EQ(f.step, p.step) << "event " << i;
    EXPECT_EQ(f.msg_id, p.msg_id) << "event " << i;
    EXPECT_EQ(f.pkt_id, p.pkt_id) << "event " << i;
    EXPECT_EQ(f.pkt_len, p.pkt_len) << "event " << i;
  }
}

/// One (system, seed) differential: fuzz a schedule on the standalone
/// link, then replay it both ways and demand byte-identical executions.
void run_one_hop_differential(const std::string& system,
                              std::uint64_t seed) {
  SCOPED_TRACE(system + " seed=" + std::to_string(seed));
  FuzzerConfig cfg;
  cfg.depth = 160;
  const FuzzRun generated =
      fuzz_script(make_system_factory(system, seed), seed, cfg);
  ASSERT_FALSE(generated.script.empty());

  const DataLink plain =
      replay_script(make_system_factory(system, seed, /*keep_trace=*/true),
                    generated.script, cfg.workload);

  FabricScriptDoc doc;
  doc.topology = "line:2";
  doc.system = system;
  doc.seed = seed;
  doc.messages = cfg.workload.messages;
  doc.payload_bytes = cfg.workload.payload_bytes;
  for (const Decision& d : generated.script) {
    doc.decisions.push_back(FabricDecision::link(0, d));
  }
  const FabricRunResult fabric =
      replay_fabric_script(doc, /*keep_trace=*/true);
  ASSERT_TRUE(fabric.ok) << fabric.error;

  // The hop link IS the standalone link: identical event stream ...
  expect_same_trace(fabric.fabric->link(0).trace(), plain.trace());
  // ... identical per-link §2.6 verdict and progress counters ...
  EXPECT_EQ(fabric.fabric->link(0).checker().violations().summary(),
            plain.checker().violations().summary());
  EXPECT_EQ(fabric.fabric->link(0).steps_taken(), plain.steps_taken());
  // ... and at one hop, the END-TO-END verdict coincides with the link's:
  // the committing hop terminates at the destination, so the e2e checker
  // runs in strict Theorem-3 mode and sees the same action sequence.
  EXPECT_EQ(fabric.violations().summary(),
            plain.checker().violations().summary());
}

TEST(FabricDiff, OneHopFabricIsByteIdenticalToThePlainLink) {
  for (const std::string& system :
       {std::string("ghm"), std::string("abp"), std::string("fixed_nonce"),
        std::string("stopwait")}) {
    for (std::uint64_t seed : {1ull, 42ull, 1989ull}) {
      run_one_hop_differential(system, seed);
    }
  }
}

TEST(FabricDiff, GeneratedFabricScriptReplaysIdentically) {
  // Generate-and-execute (the fuzzer's HopMailbox::last() read-back) must
  // agree with a cold replay of the recorded script — on a topology with
  // relays, fabric faults and all.
  FabricFuzzConfig cfg;
  cfg.topology = "line:3";
  cfg.depth = 200;
  cfg.relay_crash = 0.02;
  cfg.edge_flap = 0.02;
  for (std::uint64_t seed : {7ull, 99ull, 2026ull}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const FabricFuzzRun generated = fabric_fuzz_script(cfg, seed);
    ASSERT_FALSE(generated.script.empty());

    FabricScriptDoc doc;
    doc.topology = cfg.topology;
    doc.system = cfg.system;
    doc.seed = seed;
    doc.messages = cfg.workload.messages;
    doc.payload_bytes = cfg.workload.payload_bytes;
    doc.decisions = generated.script;
    const FabricFuzzRun replayed = run_fabric_candidate(doc);

    EXPECT_EQ(replayed.violations.summary(),
              generated.violations.summary());
    EXPECT_EQ(replayed.steps, generated.steps);
    EXPECT_EQ(replayed.oks, generated.oks);
    EXPECT_EQ(replayed.script.size(), generated.script.size());
  }
}

}  // namespace
}  // namespace s2d
